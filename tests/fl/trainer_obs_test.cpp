// Trainer + fedvr::obs integration: profiled runs populate measured phase
// timings and the timing-model estimate, export valid trace/metrics files,
// and never perturb the training trajectory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "fl/trainer.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "testing/quadratic_model.h"
#include "testing/temp_dir.h"
#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;

constexpr std::size_t kDim = 4;

data::FederatedDataset two_device_fed() {
  data::FederatedDataset fed;
  fed.train.push_back(quadratic_dataset(24, kDim, 0.0, 0.1, 100));
  fed.train.push_back(quadratic_dataset(8, kDim, 1.0, 0.1, 200));
  fed.test.push_back(quadratic_dataset(8, kDim, 0.0, 0.1, 300));
  fed.test.push_back(quadratic_dataset(8, kDim, 1.0, 0.1, 400));
  return fed;
}

opt::LocalSolver sgd_solver(std::shared_ptr<const nn::Model> model,
                            std::size_t tau) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kSvrg;
  o.tau = tau;
  o.eta = 0.1;
  o.mu = 0.1;
  return opt::LocalSolver(std::move(model), o);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Spans/flags are process-global: isolate each test run.
class TrainerObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = obs::set_enabled(false);
    obs::clear_spans();
    dir_ = testing::make_temp_dir("fedvr_trainer_obs_test");
  }
  void TearDown() override {
    obs::clear_spans();
    obs::set_enabled(prev_);
    std::filesystem::remove_all(dir_);
  }
  bool prev_ = false;
  std::filesystem::path dir_;
};

TEST_F(TrainerObsTest, MeasuredPhaseTimingsPopulatedAndMonotone) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions opts;
  opts.rounds = 5;
  opts.observability.enabled = true;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(sgd_solver(model, 10), "profiled");

  ASSERT_EQ(trace.rounds.size(), 5u);
  double prev_sum = 0.0;
  for (const auto& r : trace.rounds) {
    ASSERT_TRUE(r.measured.has_value())
        << "round " << r.round << " missing measured timings";
    // Cumulative timings: nondecreasing round over round, and every round
    // does nonzero local-solve plus eval work.
    EXPECT_GE(r.measured->sum(), prev_sum);
    prev_sum = r.measured->sum();
    EXPECT_GT(r.measured->local_solve, 0.0);
    EXPECT_GT(r.measured->eval, 0.0);
    // Phases are a decomposition of the loop body: their sum cannot exceed
    // the cumulative wall clock.
    EXPECT_LE(r.measured->sum(), r.wall_seconds + 1e-9);
  }
  // The phases cover nearly all of the round loop: the unattributed
  // remainder (trace bookkeeping, logging) must be small. Keep a loose
  // bound — CI machines are noisy.
  const auto& last = trace.rounds.back();
  EXPECT_GT(last.measured->sum(), 0.5 * last.wall_seconds);

  ASSERT_TRUE(trace.measured_timing.has_value());
  EXPECT_GE(trace.measured_timing->d_com, 0.0);
  EXPECT_GT(trace.measured_timing->d_cmp, 0.0);
  EXPECT_GT(trace.measured_timing->round_time(10),
            trace.measured_timing->round_time(1));
}

TEST_F(TrainerObsTest, UnprofiledRunLeavesMeasuredEmpty) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions opts;
  opts.rounds = 2;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(sgd_solver(model, 5), "plain");
  EXPECT_FALSE(trace.measured_timing.has_value());
  for (const auto& r : trace.rounds) EXPECT_FALSE(r.measured.has_value());
}

TEST_F(TrainerObsTest, WritesChromeTraceWithNestedRoundPhaseDeviceSpans) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions opts;
  opts.rounds = 3;
  opts.observability.enabled = true;
  opts.observability.chrome_trace_path = (dir_ / "trace.json").string();
  const Trainer trainer(model, fed, opts);
  (void)trainer.run(sgd_solver(model, 5), "traced");

  const std::string json = read_file(dir_ / "trace.json");
  // Structural validity of the trace_event envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  // All three nesting levels present.
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round.broadcast\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round.local_solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round.aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round.eval\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"device.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solver.solve\""), std::string::npos);

  // And in memory: the round span contains its phases.
  const auto spans = obs::collect_spans();
  std::size_t rounds_seen = 0;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "round") ++rounds_seen;
  }
  EXPECT_EQ(rounds_seen, 3u);
}

TEST_F(TrainerObsTest, WritesMetricsSnapshotJsonl) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions opts;
  opts.rounds = 2;
  opts.observability.enabled = true;
  opts.observability.metrics_jsonl_path = (dir_ / "metrics.jsonl").string();
  const Trainer trainer(model, fed, opts);
  (void)trainer.run(sgd_solver(model, 5), "metered");

  const std::string jsonl = read_file(dir_ / "metrics.jsonl");
  EXPECT_NE(jsonl.find("\"name\":\"solver.anchor_gradients\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"solver.inner_iterations\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"solver.sample_grad_evals\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"span_summary\",\"name\":\"round\""),
            std::string::npos);
  // Every line is a JSON object.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(TrainerObsTest, ObservabilityDoesNotPerturbTraining) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions plain;
  plain.rounds = 4;
  TrainerOptions profiled = plain;
  profiled.observability.enabled = true;
  const auto t_plain =
      Trainer(model, fed, plain).run(sgd_solver(model, 8), "a");
  const auto t_profiled =
      Trainer(model, fed, profiled).run(sgd_solver(model, 8), "b");
  ASSERT_EQ(t_plain.final_parameters.size(),
            t_profiled.final_parameters.size());
  for (std::size_t i = 0; i < t_plain.final_parameters.size(); ++i) {
    EXPECT_DOUBLE_EQ(t_plain.final_parameters[i],
                     t_profiled.final_parameters[i]);
  }
  EXPECT_EQ(t_plain.rounds.size(), t_profiled.rounds.size());
  for (std::size_t i = 0; i < t_plain.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(t_plain.rounds[i].train_loss,
                     t_profiled.rounds[i].train_loss);
  }
}

TEST_F(TrainerObsTest, RunRestoresPreviousEnableState) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed();
  TrainerOptions opts;
  opts.rounds = 1;
  opts.observability.enabled = true;
  const Trainer trainer(model, fed, opts);
  ASSERT_FALSE(obs::enabled());
  (void)trainer.run(sgd_solver(model, 2), "scoped");
  EXPECT_FALSE(obs::enabled());
}

}  // namespace
}  // namespace fedvr::fl
