// The trainer x comm::Channel seam: error feedback rescues TopK from the
// classic cancellation stall, compressed+faulty runs are bit-identical
// across thread-pool sizes, byte-derived timing rewards compression, and
// the deprecated uplink_compressor knob maps onto the channel.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/message.h"
#include "fl/trainer.h"
#include "testing/quadratic_model.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::QuadraticModel;
using fedvr::util::Error;

// A dataset of n identical points at `center` — device objectives are then
// exact quadratics 0.5 ||w - center||^2 with no sampling noise.
data::Dataset point_dataset(std::vector<double> center, std::size_t n) {
  data::Dataset ds(tensor::Shape({center.size()}), n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = ds.mutable_sample(i);
    for (std::size_t j = 0; j < center.size(); ++j) s[j] = center[j];
    ds.set_label(i, static_cast<int>(i % 2));
  }
  return ds;
}

opt::LocalSolver gd(std::shared_ptr<const nn::Model> model, std::size_t tau,
                    double eta, double mu = 0.0) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = tau;
  o.eta = eta;
  o.mu = mu;
  return opt::LocalSolver(std::move(model), o);
}

// The Stich/Karimireddy cancellation construction TopK is NOT convergent
// on: two equal-weight devices whose optima sit at (+a, b) and (-a, b).
// From w = 0 both top-1 compressed deltas keep only coordinate 0, with
// opposite signs, so the aggregate is exactly zero and plain TopK never
// moves — coordinate 1's mass is dropped every round. Error feedback
// accumulates that dropped mass until it dominates, transmits it, and the
// run converges to the true optimum (0, b).
TEST(TrainerComm, ErrorFeedbackRescuesTopKFromCancellationStall) {
  const std::size_t dim = 2;
  auto model = std::make_shared<QuadraticModel>(dim);
  data::FederatedDataset fed;
  fed.train.push_back(point_dataset({+1.0, 0.5}, 4));
  fed.train.push_back(point_dataset({-1.0, 0.5}, 4));
  fed.test.push_back(point_dataset({+1.0, 0.5}, 2));
  fed.test.push_back(point_dataset({-1.0, 0.5}, 2));
  const std::vector<double> w0{0.0, 0.0};

  TrainerOptions plain;
  plain.rounds = 200;
  plain.eval_every = 200;
  plain.comm.compressor = std::make_shared<comm::TopKCompressor>(0.5);
  TrainerOptions with_ef = plain;
  with_ef.comm.error_feedback = true;
  TrainerOptions dense = plain;
  dense.comm.compressor = nullptr;

  const Trainer t_plain(model, fed, plain);
  const Trainer t_ef(model, fed, with_ef);
  const Trainer t_dense(model, fed, dense);
  const auto solver = gd(model, 1, 0.1);
  const auto trace_plain = t_plain.run(solver, "topk", w0);
  const auto trace_ef = t_ef.run(solver, "topk+ef", w0);
  const auto trace_dense = t_dense.run(solver, "dense", w0);

  // Plain TopK: bit-exact stall at the initialization, forever. Its excess
  // loss over the uncompressed run is the full 0.5 * b^2 stall gap.
  EXPECT_EQ(trace_plain.final_parameters, w0);
  const double dense_loss = trace_dense.back().train_loss;
  EXPECT_GT(trace_plain.back().train_loss, dense_loss + 0.1);

  // TopK+EF escapes: the deferred coordinate-1 mass gets through and the
  // run settles into a small limit cycle around the uncompressed optimum
  // (constant step size; measured excess ~0.014, an order of magnitude
  // below the 0.125 stall gap).
  EXPECT_NEAR(trace_ef.final_parameters[0], 0.0, 1e-9);
  EXPECT_NEAR(trace_ef.final_parameters[1], 0.5, 0.25);
  EXPECT_LT(trace_ef.back().train_loss, dense_loss + 0.05);
  EXPECT_LT(trace_ef.back().train_loss, trace_plain.back().train_loss - 0.05);
}

TEST(TrainerComm, CompressedFaultyRunsBitIdenticalAcrossPoolSizes) {
  const std::size_t dim = 6;
  auto model = std::make_shared<QuadraticModel>(dim);
  data::FederatedDataset fed;
  for (int d = 0; d < 4; ++d) {
    fed.train.push_back(fedvr::testing::quadratic_dataset(
        6 + d, dim, static_cast<double>(d), 0.3, 50 + d));
    fed.test.push_back(fedvr::testing::quadratic_dataset(
        4, dim, static_cast<double>(d), 0.3, 90 + d));
  }
  TrainerOptions opts;
  opts.rounds = 8;
  opts.comm.compressor = std::make_shared<comm::TopKCompressor>(0.34);
  opts.comm.error_feedback = true;
  opts.comm.uplink_dtype = comm::DType::kInt8Block;
  opts.comm.byte_timing = true;
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.15;
  cfg.straggler_prob = 0.2;
  cfg.uplink_loss_prob = 0.25;
  opts.faults = FaultModel(cfg);

  const auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool::reset_global(threads);
    const Trainer trainer(model, fed, opts);
    return trainer.run(gd(model, 3, 0.3, 0.1), "comm-pool");
  };
  const auto serial = run_with_pool(1);
  const auto two = run_with_pool(2);
  const auto many = run_with_pool(0);  // hardware concurrency
  util::ThreadPool::reset_global();

  ASSERT_EQ(serial.rounds.size(), two.rounds.size());
  ASSERT_EQ(serial.rounds.size(), many.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash) << i;
    EXPECT_EQ(serial.rounds[i].param_hash, many.rounds[i].param_hash) << i;
    EXPECT_EQ(serial.rounds[i].uplink_bytes, many.rounds[i].uplink_bytes);
    EXPECT_EQ(serial.rounds[i].downlink_bytes, many.rounds[i].downlink_bytes);
    EXPECT_EQ(serial.rounds[i].model_time, many.rounds[i].model_time) << i;
  }
  EXPECT_EQ(serial.final_param_hash, many.final_param_hash);
}

TEST(TrainerComm, ByteTimingRewardsCompression) {
  const std::size_t dim = 400;
  auto model = std::make_shared<QuadraticModel>(dim);
  data::FederatedDataset fed;
  fed.train.push_back(fedvr::testing::quadratic_dataset(6, dim, 0.0, 0.1, 1));
  fed.train.push_back(fedvr::testing::quadratic_dataset(6, dim, 1.0, 0.1, 2));
  fed.test.push_back(fedvr::testing::quadratic_dataset(4, dim, 0.0, 0.1, 3));
  fed.test.push_back(fedvr::testing::quadratic_dataset(4, dim, 1.0, 0.1, 4));

  TrainerOptions dense;
  dense.rounds = 3;
  dense.comm.byte_timing = true;
  TrainerOptions lossy = dense;
  lossy.comm.compressor = std::make_shared<comm::TopKCompressor>(0.05);
  lossy.comm.uplink_dtype = comm::DType::kInt8Block;

  const auto solver = gd(model, 2, 0.2, 0.1);
  const auto dense_trace = Trainer(model, fed, dense).run(solver, "d");
  const auto lossy_trace = Trainer(model, fed, lossy).run(solver, "l");
  // Dense byte timing is calibrated to the analytic d_com: identical cost.
  const TrainerOptions analytic;
  EXPECT_NEAR(dense_trace.back().model_time,
              analytic.timing.round_time(2) * 3.0, 1e-9);
  // Compression shrinks the uplink, so byte-derived rounds are cheaper.
  EXPECT_LT(lossy_trace.back().model_time, dense_trace.back().model_time);
  EXPECT_LT(lossy_trace.back().uplink_bytes, dense_trace.back().uplink_bytes);
}

TEST(TrainerComm, DeprecatedUplinkCompressorAdoptedIntoChannel) {
  const std::size_t dim = 5;
  auto model = std::make_shared<QuadraticModel>(dim);
  data::FederatedDataset fed;
  fed.train.push_back(fedvr::testing::quadratic_dataset(6, dim, 0.0, 0.1, 1));
  fed.test.push_back(fedvr::testing::quadratic_dataset(4, dim, 0.0, 0.1, 2));

  auto compressor = std::make_shared<comm::TopKCompressor>(0.4);
  TrainerOptions legacy;
  legacy.rounds = 4;
  legacy.uplink_compressor = compressor;
  TrainerOptions channel;
  channel.rounds = 4;
  channel.comm.compressor = compressor;

  const auto solver = gd(model, 2, 0.2, 0.1);
  const auto a = Trainer(model, fed, legacy).run(solver, "x");
  const auto b = Trainer(model, fed, channel).run(solver, "x");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash);
    EXPECT_EQ(a.rounds[i].uplink_bytes, b.rounds[i].uplink_bytes);
  }

  TrainerOptions both = legacy;
  both.comm.compressor = compressor;
  EXPECT_THROW(Trainer(model, fed, both), Error);
}

}  // namespace
}  // namespace fedvr::fl
