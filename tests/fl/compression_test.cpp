#include "fl/compression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/vecops.h"
#include "testing/quadratic_model.h"
#include "fl/trainer.h"
#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Error;
using fedvr::util::Rng;

TEST(TopK, KeepsLargestMagnitudes) {
  const TopKCompressor comp(0.4);  // keep 2 of 5
  std::vector<double> delta = {0.1, -5.0, 0.3, 4.0, -0.2};
  Rng rng(1);
  comp.compress(delta, rng);
  EXPECT_DOUBLE_EQ(delta[0], 0.0);
  EXPECT_DOUBLE_EQ(delta[1], -5.0);
  EXPECT_DOUBLE_EQ(delta[2], 0.0);
  EXPECT_DOUBLE_EQ(delta[3], 4.0);
  EXPECT_DOUBLE_EQ(delta[4], 0.0);
}

TEST(TopK, FullFractionIsIdentity) {
  const TopKCompressor comp(1.0);
  std::vector<double> delta = {1.0, -2.0, 3.0};
  const auto original = delta;
  Rng rng(1);
  comp.compress(delta, rng);
  EXPECT_EQ(delta, original);
}

TEST(TopK, KeepsAtLeastOneCoordinate) {
  const TopKCompressor comp(0.01);
  EXPECT_EQ(comp.kept(5), 1u);
  std::vector<double> delta = {0.0, 0.0, 7.0, 0.0, 0.0};
  Rng rng(1);
  comp.compress(delta, rng);
  EXPECT_DOUBLE_EQ(delta[2], 7.0);
}

TEST(TopK, WireBytesReflectSparsity) {
  const TopKCompressor comp(0.1);
  // 10% of 1000 = 100 coords x (8 value + 4 index) bytes.
  EXPECT_EQ(comp.wire_bytes(1000), 100u * 12u);
  EXPECT_LT(comp.wire_bytes(1000), 1000u * 8u);
}

TEST(TopK, RejectsBadFraction) {
  EXPECT_THROW(TopKCompressor(0.0), Error);
  EXPECT_THROW(TopKCompressor(1.5), Error);
}

TEST(RandK, KeepsExactlyKScaledCoordinates) {
  const RandKCompressor comp(0.25);  // keep 2 of 8
  std::vector<double> delta(8, 1.0);
  Rng rng(3);
  comp.compress(delta, rng);
  std::size_t kept = 0;
  for (double v : delta) {
    if (v != 0.0) {
      EXPECT_DOUBLE_EQ(v, 4.0);  // scaled by dim/k = 8/2
      ++kept;
    }
  }
  EXPECT_EQ(kept, 2u);
}

TEST(RandK, IsUnbiasedInExpectation) {
  const RandKCompressor comp(0.5);
  const std::vector<double> original = {1.0, -2.0, 3.0, -4.0};
  std::vector<double> mean(4, 0.0);
  const int trials = 20000;
  Rng rng(7);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> delta = original;
    comp.compress(delta, rng);
    tensor::axpy(1.0 / trials, delta, mean);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean[i], original[i], 0.05 * std::abs(original[i]) + 0.02);
  }
}

TEST(TopK, TieBreaksByLowestIndex) {
  // Equal magnitudes are ordered by index, so the kept set is unique:
  // nth_element's unspecified tie permutation (which differs across
  // standard libraries) must never decide which coordinate survives.
  const TopKCompressor comp(0.5);  // keep 3 of 6
  std::vector<double> delta = {1.0, -1.0, 1.0, -1.0, 1.0, 1.0};
  Rng rng(1);
  comp.compress(delta, rng);
  const std::vector<double> expected = {1.0, -1.0, 1.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(delta, expected);
}

TEST(TopK, TieHeavyInputIsDeterministic) {
  // Duplicated magnitudes interleaved with strictly larger ones: the large
  // entries always survive, and ties fill the remaining slots lowest-index
  // first.
  const TopKCompressor comp(0.375);  // keep 3 of 8
  std::vector<double> delta = {2.0, 1.0, -2.0, 1.0, 2.0, 1.0, -1.0, 1.0};
  Rng rng(9);
  comp.compress(delta, rng);
  // |2.0| entries at indices 0, 2, 4 fill all three slots by index order.
  const std::vector<double> expected = {2.0, 0.0, -2.0, 0.0, 2.0,
                                        0.0, 0.0,  0.0};
  EXPECT_EQ(delta, expected);
  // Repeated compression of the same input gives byte-identical output.
  std::vector<double> again = {2.0, 1.0, -2.0, 1.0, 2.0, 1.0, -1.0, 1.0};
  Rng rng2(1234);
  comp.compress(again, rng2);
  EXPECT_EQ(again, expected);
}

TEST(RandK, ScaleUsesRealizedKeepRateNotTheNominalFraction) {
  // dim = 5, fraction = 0.01: the floor of one kept coordinate makes the
  // realized keep-rate 1/5, so the survivor must be scaled by 5 — scaling
  // by 1/fraction = 100 would inflate the estimator by 20x.
  const RandKCompressor comp(0.01);
  ASSERT_EQ(comp.kept(5), 1u);
  std::vector<double> delta(5, 1.0);
  Rng rng(11);
  comp.compress(delta, rng);
  double sum = 0.0;
  for (double v : delta) sum += v;
  EXPECT_DOUBLE_EQ(sum, 5.0);  // exactly one survivor, scaled by dim/k = 5
}

TEST(RandK, UnbiasedOnAwkwardDimension) {
  // dim = 7, fraction = 0.3: k = round(2.1) = 2, so the realized keep-rate
  // 2/7 differs from the nominal 0.3. Averaging many compressions must
  // still recover the input — the regression the 1/fraction scaling bug
  // would fail (systematic 5% inflation, far outside the tolerance).
  const RandKCompressor comp(0.3);
  ASSERT_EQ(comp.kept(7), 2u);
  const std::vector<double> original = {1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0};
  std::vector<double> mean(7, 0.0);
  const int trials = 40000;
  Rng rng(17);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> delta = original;
    comp.compress(delta, rng);
    tensor::axpy(1.0 / trials, delta, mean);
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(mean[i], original[i], 0.03 * std::abs(original[i]));
  }
}

TEST(RandK, DifferentSeedsPickDifferentSupports) {
  const RandKCompressor comp(0.2);
  std::vector<double> a(20, 1.0), b(20, 1.0);
  Rng r1(1), r2(2);
  comp.compress(a, r1);
  comp.compress(b, r2);
  EXPECT_NE(a, b);
}

// ---- Trainer integration ----

constexpr std::size_t kDim = 6;

data::FederatedDataset small_fed() {
  data::FederatedDataset fed;
  fed.train.push_back(quadratic_dataset(20, kDim, 0.0, 0.5, 1));
  fed.train.push_back(quadratic_dataset(20, kDim, 2.0, 0.5, 2));
  fed.test.push_back(quadratic_dataset(5, kDim, 0.0, 0.5, 3));
  fed.test.push_back(quadratic_dataset(5, kDim, 2.0, 0.5, 4));
  return fed;
}

opt::LocalSolver quad_solver(std::shared_ptr<const nn::Model> model) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = 4;
  o.eta = 0.2;
  o.mu = 0.5;
  return opt::LocalSolver(std::move(model), o);
}

TEST(TrainerCompression, ReducesUplinkBytes) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions plain;
  plain.rounds = 4;
  TrainerOptions compressed = plain;
  compressed.uplink_compressor = std::make_shared<TopKCompressor>(0.5);
  const Trainer t1(model, fed, plain);
  const Trainer t2(model, fed, compressed);
  const auto a = t1.run(quad_solver(model), "plain");
  const auto b = t2.run(quad_solver(model), "topk");
  EXPECT_LT(b.back().comm_bytes, a.back().comm_bytes);
  // Downlink is still dense: bytes don't collapse to the uplink alone.
  EXPECT_GT(b.back().comm_bytes,
            4u * 2u * kDim * sizeof(double) / 2u);
}

TEST(TrainerCompression, StillConvergesOnQuadratic) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 25;
  opts.uplink_compressor = std::make_shared<TopKCompressor>(0.5);
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(quad_solver(model), "topk");
  EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss);
}

TEST(TrainerCompression, FullFractionMatchesUncompressedRun) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions plain;
  plain.rounds = 5;
  TrainerOptions identity = plain;
  identity.uplink_compressor = std::make_shared<TopKCompressor>(1.0);
  const Trainer t1(model, fed, plain);
  const Trainer t2(model, fed, identity);
  const auto a = t1.run(quad_solver(model), "x");
  const auto b = t2.run(quad_solver(model), "x");
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-12);
  }
}

TEST(TrainerStragglers, RoundTimeIsTheSlowestParticipant) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 3;
  opts.per_device_timing = {TimingModel{.d_com = 1.0, .d_cmp = 0.1},
                            TimingModel{.d_com = 1.0, .d_cmp = 2.0}};
  const Trainer trainer(model, fed, opts);
  const std::size_t tau = 4;
  const auto trace = trainer.run(quad_solver(model), "t");
  const double slow_round = 1.0 + 2.0 * static_cast<double>(tau);
  EXPECT_NEAR(trace.back().model_time, 3.0 * slow_round, 1e-12);
}

TEST(TrainerStragglers, WrongTimingVectorLengthThrows) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.per_device_timing = {TimingModel{}};  // 1 entry for 2 devices
  EXPECT_THROW(Trainer(model, fed, opts), Error);
}

TEST(TrainerStragglers, SamplingCanDodgeTheStraggler) {
  // With client sampling of 1 device per round, rounds that exclude the
  // slow device cost less: cumulative model time < all-rounds-slow.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 10;
  opts.seed = 3;
  opts.devices_per_round = 1;
  opts.per_device_timing = {TimingModel{.d_com = 1.0, .d_cmp = 0.1},
                            TimingModel{.d_com = 1.0, .d_cmp = 5.0}};
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(quad_solver(model), "t");
  const double all_slow = 10.0 * (1.0 + 5.0 * 4.0);
  EXPECT_LT(trace.back().model_time, all_slow);
}

}  // namespace
}  // namespace fedvr::fl
