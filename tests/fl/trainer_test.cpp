#include "fl/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "check/check.h"
#include "comm/message.h"
#include "tensor/vecops.h"
#include "testing/quadratic_model.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::dataset_mean;
using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Error;

constexpr std::size_t kDim = 4;

// Two devices with quadratic objectives centered at different points: the
// global optimum is the D_n/D-weighted mean of the two centers.
data::FederatedDataset two_device_fed(std::size_t n0, std::size_t n1,
                                      double c0, double c1) {
  data::FederatedDataset fed;
  fed.train.push_back(quadratic_dataset(n0, kDim, c0, 0.1, 100));
  fed.train.push_back(quadratic_dataset(n1, kDim, c1, 0.1, 200));
  fed.test.push_back(quadratic_dataset(8, kDim, c0, 0.1, 300));
  fed.test.push_back(quadratic_dataset(8, kDim, c1, 0.1, 400));
  return fed;
}

opt::LocalSolver gd_solver(std::shared_ptr<const nn::Model> model,
                           std::size_t tau, double eta, double mu) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = tau;
  o.eta = eta;
  o.mu = mu;
  return opt::LocalSolver(std::move(model), o);
}

TEST(Trainer, ValidatesConstruction) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions bad;
  bad.rounds = 0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  TrainerOptions sample_too_many;
  sample_too_many.devices_per_round = 5;
  EXPECT_THROW(Trainer(model, fed, sample_too_many), Error);
  data::FederatedDataset with_empty = two_device_fed(10, 10, 0.0, 1.0);
  with_empty.train[1] = data::Dataset(tensor::Shape({kDim}), 0, 2);
  EXPECT_THROW(Trainer(model, with_empty, TrainerOptions{}), Error);
}

TEST(Trainer, OptionValidationSurvivesDisabledCheckLayer) {
  // Constructor validation is the production guard rail, not debug
  // instrumentation: every malformed-option throw below must fire with the
  // FEDVR_CHECKS runtime gate off (and in -DFEDVR_CHECKS=OFF builds, where
  // this test runs with the gated macros compiled out entirely).
  const bool prev = check::set_enabled(false);
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions bad;
  bad.eval_every = 0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.devices_per_round = 0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.devices_per_round = fed.num_devices() + 1;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.rounds = 0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.round_deadline = -1.0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.defense.update_norm_bound = -2.0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  bad = TrainerOptions{};
  bad.defense.quarantine_strikes = 1;
  bad.defense.quarantine_rounds = 0;
  EXPECT_THROW(Trainer(model, fed, bad), Error);
  check::set_enabled(prev);
}

TEST(Trainer, GlobalLossIsWeightedDeviceLoss) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(30, 10, 0.0, 2.0);
  const Trainer trainer(model, fed, TrainerOptions{});
  const std::vector<double> w(kDim, 1.0);
  const double expected = 0.75 * model->full_loss(w, fed.train[0]) +
                          0.25 * model->full_loss(w, fed.train[1]);
  EXPECT_NEAR(trainer.global_loss(w), expected, 1e-12);
}

TEST(Trainer, GlobalGradNormSqMatchesAnalyticQuadratic) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(20, 20, -1.0, 3.0);
  const Trainer trainer(model, fed, TrainerOptions{});
  // grad F̄(w) = w - weighted mean of device means.
  std::vector<double> target(kDim, 0.0);
  tensor::axpy(fed.weight(0), dataset_mean(fed.train[0]), target);
  tensor::axpy(fed.weight(1), dataset_mean(fed.train[1]), target);
  const std::vector<double> w(kDim, 0.5);
  EXPECT_NEAR(trainer.global_grad_norm_sq(w),
              tensor::squared_distance(w, target), 1e-10);
}

TEST(Trainer, ConvergesToWeightedOptimumWithFullGradientLocalSteps) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(30, 10, 0.0, 4.0);
  TrainerOptions opts;
  opts.rounds = 60;
  opts.seed = 5;
  const Trainer trainer(model, fed, opts);
  // Moderate mu keeps locals near the anchor => stable convergence to the
  // weighted optimum.
  const auto trace = trainer.run(gd_solver(model, 5, 0.3, 1.0), "gd");
  ASSERT_FALSE(trace.empty());
  // Loss decreases to (near) the irreducible variance floor.
  EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss);
  EXPECT_LT(trace.back().train_loss - trace.min_train_loss(), 1e-6);
}

TEST(Trainer, SerialAndParallelRunsProduceIdenticalTraces) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(15, 25, 1.0, -2.0);
  TrainerOptions serial;
  serial.rounds = 10;
  serial.seed = 7;
  serial.parallel = false;
  TrainerOptions parallel = serial;
  parallel.parallel = true;
  const Trainer ts(model, fed, serial);
  const Trainer tp(model, fed, parallel);
  const auto a = ts.run(gd_solver(model, 3, 0.2, 0.5), "x");
  const auto b = tp.run(gd_solver(model, 3, 0.2, 0.5), "x");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
    EXPECT_DOUBLE_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
  }
}

TEST(Trainer, TraceRecordsModelTimeFromTimingModel) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 4;
  opts.timing = TimingModel{.d_com = 1.0, .d_cmp = 0.5};
  const Trainer trainer(model, fed, opts);
  const std::size_t tau = 6;
  const auto trace = trainer.run(gd_solver(model, tau, 0.2, 0.5), "t");
  ASSERT_EQ(trace.rounds.size(), 4u);
  const double per_round = 1.0 + 0.5 * static_cast<double>(tau);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(trace.rounds[i].model_time,
                per_round * static_cast<double>(i + 1), 1e-12);
  }
}

TEST(Trainer, EvalEveryThinsTheTrace) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 10;
  opts.eval_every = 3;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t");
  // Rounds 3, 6, 9 plus the final round 10.
  ASSERT_EQ(trace.rounds.size(), 4u);
  EXPECT_EQ(trace.rounds[0].round, 3u);
  EXPECT_EQ(trace.rounds.back().round, 10u);
}

TEST(Trainer, ClientSamplingUsesSubsetAndStaysDeterministic) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  data::FederatedDataset fed;
  for (int d = 0; d < 6; ++d) {
    fed.train.push_back(
        quadratic_dataset(10, kDim, static_cast<double>(d), 0.1,
                          500 + static_cast<std::uint64_t>(d)));
    fed.test.push_back(
        quadratic_dataset(4, kDim, static_cast<double>(d), 0.1,
                          600 + static_cast<std::uint64_t>(d)));
  }
  TrainerOptions opts;
  opts.rounds = 8;
  opts.seed = 11;
  opts.devices_per_round = 2;
  const Trainer trainer(model, fed, opts);
  const auto a = trainer.run(gd_solver(model, 3, 0.2, 0.5), "s");
  const auto b = trainer.run(gd_solver(model, 3, 0.2, 0.5), "s");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
  }
  EXPECT_LT(a.back().train_loss, a.rounds.front().train_loss * 1.5);
}

TEST(Trainer, SampledSubsetWeightsRenormalizeToOne) {
  // Every device holds a copy of the same dataset, so each local solve
  // returns (up to rounding) the same model: aggregating ANY sampled subset
  // with weights renormalized to one must match full participation. A
  // missing renormalization scales the model by the sampled weight mass
  // (1/3 here) instead — a gross divergence, not rounding noise.
  auto model = std::make_shared<QuadraticModel>(kDim);
  data::FederatedDataset fed;
  for (int d = 0; d < 3; ++d) {
    fed.train.push_back(quadratic_dataset(12, kDim, 2.0, 0.2, 77));
    fed.test.push_back(quadratic_dataset(4, kDim, 2.0, 0.2, 88));
  }
  TrainerOptions full;
  full.rounds = 8;
  full.seed = 19;
  TrainerOptions sampled = full;
  sampled.devices_per_round = 1;
  const Trainer tf(model, fed, full);
  const Trainer ts(model, fed, sampled);
  const auto a = tf.run(gd_solver(model, 3, 0.2, 0.5), "full");
  const auto b = ts.run(gd_solver(model, 3, 0.2, 0.5), "sampled");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-9);
  }
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_NEAR(a.final_parameters[j], b.final_parameters[j], 1e-9);
  }
}

TEST(Trainer, ClientSamplingIsDeterministicAcrossPoolSizes) {
  // The participant draw forks its RNG by round, never from a shared
  // stream, so the sampled subsets — and hence the whole trace — must be
  // bit-identical whether devices run on 1, 2, or all hardware threads.
  auto model = std::make_shared<QuadraticModel>(kDim);
  data::FederatedDataset fed;
  for (int d = 0; d < 6; ++d) {
    fed.train.push_back(
        quadratic_dataset(10 + d, kDim, static_cast<double>(d), 0.1,
                          500 + static_cast<std::uint64_t>(d)));
    fed.test.push_back(
        quadratic_dataset(4, kDim, static_cast<double>(d), 0.1,
                          600 + static_cast<std::uint64_t>(d)));
  }
  TrainerOptions opts;
  opts.rounds = 8;
  opts.seed = 29;
  opts.devices_per_round = 2;
  const Trainer trainer(model, fed, opts);
  auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool::reset_global(threads);
    return trainer.run(gd_solver(model, 3, 0.2, 0.5), "s");
  };
  const auto serial = run_with_pool(1);
  const auto two = run_with_pool(2);
  const auto full = run_with_pool(0);
  util::ThreadPool::reset_global(0);
  ASSERT_EQ(serial.rounds.size(), two.rounds.size());
  ASSERT_EQ(serial.rounds.size(), full.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash);
    EXPECT_EQ(serial.rounds[i].param_hash, full.rounds[i].param_hash);
  }
  EXPECT_EQ(serial.final_param_hash, full.final_param_hash);
}

TEST(Trainer, TargetAccuracyStopsEarly) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 50;
  opts.target_accuracy = 0.0;  // any accuracy qualifies => stop at round 1
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t");
  EXPECT_EQ(trace.rounds.size(), 1u);
}

TEST(Trainer, TargetAccuracyFiresOnFirstEvaluatedRound) {
  // With eval_every = 3 the accuracy is only observed at rounds 3, 6, ...:
  // an always-satisfied target must stop at round 3 (the first EVALUATED
  // round), producing exactly one trace entry — not round 1, and not a
  // full-length run.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 50;
  opts.eval_every = 3;
  opts.target_accuracy = 0.0;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t");
  ASSERT_EQ(trace.rounds.size(), 1u);
  EXPECT_EQ(trace.rounds.front().round, 3u);
}

TEST(Trainer, TargetAccuracyCanStopAtRoundZero) {
  // Regression: the target check used to live only inside the round loop,
  // so a run whose *initial* model already met the target still paid for a
  // full training round. With eval_initial on, the round-0 entry must be
  // able to end the run before any device trains.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 50;
  opts.eval_initial = true;
  opts.target_accuracy = 0.0;  // satisfied by any model, w̄^(0) included
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 0.25);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t", w0);
  ASSERT_EQ(trace.rounds.size(), 1u);
  EXPECT_EQ(trace.rounds.front().round, 0u);
  // No round ran: the final model is the starting point, untouched.
  EXPECT_EQ(trace.final_parameters, w0);
  // Without eval_initial there is no round-0 observation, so the same
  // configuration stops at round 1 instead.
  TrainerOptions no_initial = opts;
  no_initial.eval_initial = false;
  const Trainer t2(model, fed, no_initial);
  const auto trace2 = t2.run(gd_solver(model, 2, 0.2, 0.5), "t", w0);
  ASSERT_EQ(trace2.rounds.size(), 1u);
  EXPECT_EQ(trace2.rounds.front().round, 1u);
}

TEST(Trainer, ProvidedInitialPointIsUsed) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 0.0);
  TrainerOptions opts;
  opts.rounds = 1;
  const Trainer trainer(model, fed, opts);
  // Start exactly at the optimum: the first round must not move the loss
  // above its floor, and mu enormous pins the iterate there.
  std::vector<double> w0(kDim, 0.0);
  for (std::size_t i = 0; i < kDim; ++i) {
    w0[i] = dataset_mean(fed.train[0])[i] * fed.weight(0) +
            dataset_mean(fed.train[1])[i] * fed.weight(1);
  }
  const auto trace =
      trainer.run(gd_solver(model, 2, 0.1, 1e9), "pin", w0);
  const double floor_loss = trainer.global_loss(w0);
  EXPECT_NEAR(trace.back().train_loss, floor_loss, 1e-6);
}

TEST(Trainer, MaxTrainLossSeesSpikes) {
  TrainingTrace t;
  t.algorithm = "x";
  for (double loss : {1.0, 9.0, 0.5}) {
    RoundMetrics m;
    m.train_loss = loss;
    t.rounds.push_back(m);
  }
  EXPECT_DOUBLE_EQ(t.max_train_loss(), 9.0);
  t.rounds[1].train_loss = std::nan("");
  EXPECT_TRUE(std::isinf(t.max_train_loss()));
}

TEST(Trainer, EvalInitialRecordsRoundZero) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 3;
  opts.eval_initial = true;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t");
  ASSERT_EQ(trace.rounds.size(), 4u);
  EXPECT_EQ(trace.rounds.front().round, 0u);
  // Round 0 carries the loss at the initialization, before any update.
  util::Rng init_rng = util::fork(opts.seed, 0, 0, util::stream::kInit);
  const auto w0 = model->initial_parameters(init_rng);
  EXPECT_NEAR(trace.rounds.front().train_loss, trainer.global_loss(w0),
              1e-12);
}

TEST(Trainer, CommBytesAccountingMatchesFormula) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 5;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model, 2, 0.2, 0.5), "t");
  // rounds x devices x 2 directions x the serialized dense-f64 message
  // size (comm::Message header + payload), cumulative — and the split
  // counters are symmetric: one downlink broadcast per uplink update.
  const std::size_t msg =
      comm::wire_bytes(comm::DType::kFloat64, kDim, kDim, /*sparse=*/false);
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const std::size_t rounds_done = trace.rounds[i].round;
    EXPECT_EQ(trace.rounds[i].uplink_bytes, rounds_done * 2u * msg);
    EXPECT_EQ(trace.rounds[i].downlink_bytes, rounds_done * 2u * msg);
    EXPECT_EQ(trace.rounds[i].comm_bytes,
              trace.rounds[i].uplink_bytes + trace.rounds[i].downlink_bytes);
  }
}

TEST(Trainer, SampleGradEvalAccountingMatchesSolverCosts) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(12, 8, 0.0, 1.0);
  TrainerOptions opts;
  opts.rounds = 3;
  const Trainer trainer(model, fed, opts);
  const std::size_t tau = 4;
  const auto trace = trainer.run(gd_solver(model, tau, 0.2, 0.5), "t");
  // Full-gradient solver: per device per round, n anchor + tau * n inner.
  const std::size_t per_round = (12 + 8) * (1 + tau);
  EXPECT_EQ(trace.back().sample_grad_evals, 3 * per_round);
}

TEST(Trainer, PerDeviceSolversRunTheirOwnConfigurations) {
  // Device 0 frozen (tiny eta), device 1 converging: after aggregation the
  // global model must sit strictly between the anchor and device 1's
  // optimum — evidence both solvers actually ran with their own options.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 4.0);
  std::vector<opt::LocalSolver> solvers;
  opt::LocalSolverOptions frozen;
  frozen.estimator = opt::Estimator::kFullGradient;
  frozen.tau = 4;
  frozen.eta = 1e-12;
  frozen.mu = 0.0;
  solvers.emplace_back(model, frozen);
  opt::LocalSolverOptions moving = frozen;
  moving.eta = 0.3;
  solvers.emplace_back(model, moving);
  TrainerOptions opts;
  opts.rounds = 1;
  const Trainer trainer(model, fed, opts);
  std::vector<double> w0(kDim, 0.0);
  const auto trace =
      trainer.run(std::span<const opt::LocalSolver>(solvers), "het", w0);
  // Device 0 stays ~0 (its mean is ~0 anyway); device 1 moved toward 4.
  // The weighted average must have moved strictly off the origin.
  double norm = 0.0;
  for (double v : trace.final_parameters) norm += v * v;
  EXPECT_GT(norm, 0.1);
}

TEST(Trainer, PerDeviceSolversTimingChargesTheLargestTau) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  std::vector<opt::LocalSolver> solvers;
  opt::LocalSolverOptions small_tau;
  small_tau.estimator = opt::Estimator::kFullGradient;
  small_tau.tau = 2;
  small_tau.eta = 0.1;
  solvers.emplace_back(model, small_tau);
  opt::LocalSolverOptions big_tau = small_tau;
  big_tau.tau = 9;
  solvers.emplace_back(model, big_tau);
  TrainerOptions opts;
  opts.rounds = 3;
  opts.timing = TimingModel{.d_com = 1.0, .d_cmp = 1.0};
  const Trainer trainer(model, fed, opts);
  const auto trace =
      trainer.run(std::span<const opt::LocalSolver>(solvers), "het");
  EXPECT_NEAR(trace.back().model_time, 3.0 * (1.0 + 9.0), 1e-12);
}

TEST(Trainer, PerDeviceSolverCountMismatchThrows) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  std::vector<opt::LocalSolver> solvers;
  opt::LocalSolverOptions o;
  o.eta = 0.1;
  solvers.emplace_back(model, o);  // one solver, two devices
  const Trainer trainer(model, fed, TrainerOptions{});
  EXPECT_THROW(
      (void)trainer.run(std::span<const opt::LocalSolver>(solvers), "x"),
      Error);
}

TEST(Trainer, GradNormEvaluationIsOptIn) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = two_device_fed(10, 10, 0.0, 1.0);
  TrainerOptions off;
  off.rounds = 2;
  TrainerOptions on = off;
  on.eval_grad_norm = true;
  const Trainer toff(model, fed, off);
  const Trainer ton(model, fed, on);
  const auto a = toff.run(gd_solver(model, 2, 0.2, 0.5), "t");
  const auto b = ton.run(gd_solver(model, 2, 0.2, 0.5), "t");
  EXPECT_LT(a.back().grad_norm_sq, 0.0);   // sentinel -1
  EXPECT_GE(b.back().grad_norm_sq, 0.0);
}

}  // namespace
}  // namespace fedvr::fl
