#include "fl/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "fl/timing_model.h"
#include "testing/temp_dir.h"
#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

TrainingTrace make_trace(std::initializer_list<double> losses,
                         std::initializer_list<double> accs) {
  TrainingTrace t;
  t.algorithm = "test";
  auto li = losses.begin();
  auto ai = accs.begin();
  std::size_t round = 1;
  for (; li != losses.end() && ai != accs.end(); ++li, ++ai, ++round) {
    RoundMetrics m;
    m.round = round;
    m.train_loss = *li;
    m.test_accuracy = *ai;
    t.rounds.push_back(m);
  }
  return t;
}

TEST(TrainingTrace, BestAccuracyReturnsFirstMaximum) {
  const auto t = make_trace({1.0, 0.5, 0.4, 0.39}, {0.1, 0.9, 0.9, 0.8});
  const auto [best, round] = t.best_accuracy();
  EXPECT_DOUBLE_EQ(best, 0.9);
  EXPECT_EQ(round, 2u);
}

TEST(TrainingTrace, BestAccuracyOnEmptyThrows) {
  const TrainingTrace t;
  EXPECT_THROW((void)t.best_accuracy(), Error);
}

TEST(TrainingTrace, FirstRoundBelowLoss) {
  const auto t = make_trace({1.0, 0.6, 0.3, 0.2}, {0, 0, 0, 0});
  EXPECT_EQ(t.first_round_below_loss(0.5).value(), 3u);
  EXPECT_EQ(t.first_round_below_loss(1.5).value(), 1u);
  EXPECT_FALSE(t.first_round_below_loss(0.1).has_value());
}

TEST(TrainingTrace, MinTrainLoss) {
  const auto t = make_trace({1.0, 0.2, 0.5}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(t.min_train_loss(), 0.2);
}

TEST(TrainingTrace, MaxTrainLoss) {
  const auto t = make_trace({1.0, 0.2, 0.5}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(t.max_train_loss(), 1.0);
}

TEST(TrainingTrace, DivergenceDetector) {
  EXPECT_FALSE(make_trace({1.0, 0.5}, {0, 0}).diverged());
  EXPECT_TRUE(make_trace({1.0, 5.0}, {0, 0}).diverged());
  auto nan_trace = make_trace({1.0, 1.0}, {0, 0});
  nan_trace.rounds.back().train_loss =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(nan_trace.diverged());
  // Single-round traces cannot be classified.
  EXPECT_FALSE(make_trace({9.0}, {0}).diverged());
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TrainingTrace, NanAnywhereCountsAsDivergence) {
  // Regression: the detector used to inspect only the LAST round's loss, so
  // a run that blew up mid-trace and then "recovered" to a finite value —
  // or one whose FIRST loss was NaN, making `last > factor * first`
  // vacuously false — was reported as healthy.
  auto mid = make_trace({1.0, 0.5, 0.4}, {0, 0, 0});
  mid.rounds[1].train_loss = kNaN;
  EXPECT_TRUE(mid.diverged());
  auto first = make_trace({1.0, 0.5}, {0, 0});
  first.rounds.front().train_loss = kNaN;
  EXPECT_TRUE(first.diverged());
  // Even a single-round trace with a NaN loss is divergence.
  auto single = make_trace({1.0}, {0});
  single.rounds.front().train_loss = kNaN;
  EXPECT_TRUE(single.diverged());
  // +Inf at the end is divergence via the non-finite check.
  auto inf = make_trace({1.0, 1.0}, {0, 0});
  inf.rounds.back().train_loss = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(inf.diverged());
}

TEST(TrainingTrace, LossStatsTreatNanAsPositiveInfinity) {
  // Regression: NaN comparisons are false, so a NaN round used to be able
  // to win min_train_loss (never beaten) or be skipped by max_train_loss
  // and first_round_below_loss. The documented policy is NaN == +inf.
  auto t = make_trace({1.0, 0.5, 0.2}, {0, 0, 0});
  t.rounds[1].train_loss = kNaN;
  EXPECT_DOUBLE_EQ(t.min_train_loss(), 0.2);
  EXPECT_TRUE(std::isinf(t.max_train_loss()));
  EXPECT_GT(t.max_train_loss(), 0.0);
  // The NaN round (round 2) can never satisfy "below target"; round 3 does.
  EXPECT_EQ(t.first_round_below_loss(0.5).value(), 3u);

  auto all_nan = make_trace({1.0}, {0});
  all_nan.rounds.front().train_loss = kNaN;
  EXPECT_TRUE(std::isinf(all_nan.min_train_loss()));
  EXPECT_FALSE(all_nan.first_round_below_loss(1e100).has_value());
}

TEST(TrainingTrace, WriteCsvRoundTrips) {
  auto t = make_trace({0.7, 0.6}, {0.5, 0.55});
  t.rounds[1].corrupted_updates = 3;
  t.rounds[1].rejected_updates = 2;
  t.rounds[1].quarantined_device_rounds = 1;
  t.rounds[1].uplink_bytes = 5;
  t.rounds[1].downlink_bytes = 4;
  t.rounds[1].undelivered_updates = 7;
  const auto dir = testing::make_temp_dir("fedvr_metrics_test");
  const std::string path = (dir / "trace.csv").string();
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  // SCHEMA PIN (v2, DESIGN.md §11): this header is the trace-file contract
  // consumed by plotting and sweep tooling. Columns are position-stable —
  // add new ones at the END only, and update this pin (and DESIGN.md's
  // schema note) when you do. v2 renamed quarantined_devices to
  // quarantined_device_rounds and appended undelivered_updates.
  EXPECT_EQ(header,
            "algorithm,round,train_loss,test_accuracy,grad_norm_sq,"
            "model_time,wall_seconds,mean_local_theta,comm_bytes,"
            "sample_grad_evals,param_hash,dropped_devices,straggler_devices,"
            "uplink_retries,deadline_misses,realized_round_time,"
            "t_broadcast,t_local_solve,t_aggregate,t_eval,"
            "corrupted_updates,rejected_updates,quarantined_device_rounds,"
            "uplink_bytes,downlink_bytes,undelivered_updates");
  EXPECT_EQ(row1.substr(0, 11), "test,1,0.7,");
  EXPECT_EQ(row2.substr(0, 11), "test,2,0.6,");
  // Defense counters + split byte counters + the appended undelivered
  // column land in the last six columns.
  EXPECT_EQ(row1.substr(row1.size() - 12), ",0,0,0,0,0,0");
  EXPECT_EQ(row2.substr(row2.size() - 12), ",3,2,1,5,4,7");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fedvr::fl
