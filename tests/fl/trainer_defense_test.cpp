// Byzantine-robustness integration: corrupted-update injection flowing
// through the server-side defense layer (rejection + quarantine) and the
// pluggable aggregators, end to end through Trainer::run. The repo's two
// standing contracts still apply with corruption in flight:
//   * determinism — fixed seed ⇒ bit-identical traces for any pool size,
//     for EVERY aggregator;
//   * neutrality — defense defaults + a null aggregator take the exact
//     pre-seam code path (hash-identical traces).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "check/check.h"
#include "fl/trainer.h"
#include "testing/quadratic_model.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;

constexpr std::size_t kDim = 5;

opt::LocalSolver gd_solver(std::shared_ptr<const nn::Model> model,
                           std::size_t tau = 4) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = tau;
  o.eta = 0.2;
  o.mu = 0.5;
  return opt::LocalSolver(std::move(model), o);
}

data::FederatedDataset small_fed(std::size_t devices = 4) {
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    fed.train.push_back(quadratic_dataset(10 + 3 * d, kDim,
                                          static_cast<double>(d), 0.3,
                                          700 + d));
    fed.test.push_back(
        quadratic_dataset(4, kDim, static_cast<double>(d), 0.3, 800 + d));
  }
  return fed;
}

/// Identical local objectives, unequal weights (see trainer_faults_test):
/// any accepted subset, renormalized, aggregates to the full-participation
/// model — the tool for proving rejection renormalizes correctly.
data::FederatedDataset replicated_fed(std::size_t devices) {
  const data::Dataset base = quadratic_dataset(10, kDim, 1.5, 0.4, 900);
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    data::Dataset copies(base.sample_shape(), 0, 2);
    for (std::size_t rep = 0; rep <= d; ++rep) copies.append(base);
    fed.train.push_back(std::move(copies));
    fed.test.push_back(quadratic_dataset(4, kDim, 1.5, 0.4, 950 + d));
  }
  return fed;
}

/// Every delivered update corrupted with the given kind, nothing else.
FaultModelConfig always_corrupt(CorruptionKind kind) {
  FaultModelConfig cfg;
  cfg.corrupt_prob = 1.0;
  cfg.corrupt_nan_weight = kind == CorruptionKind::kNanInject ? 1.0 : 0.0;
  cfg.corrupt_sign_weight = kind == CorruptionKind::kSignFlip ? 1.0 : 0.0;
  cfg.corrupt_scale_weight = kind == CorruptionKind::kScale ? 1.0 : 0.0;
  cfg.corrupt_stale_weight =
      kind == CorruptionKind::kStaleReplay ? 1.0 : 0.0;
  return cfg;
}

TEST(TrainerDefense, NullAggregatorEqualsExplicitMeanBitForBit) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions null_agg;
  null_agg.rounds = 6;
  null_agg.seed = 17;
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.2;
  null_agg.faults = FaultModel(cfg);
  TrainerOptions explicit_mean = null_agg;
  explicit_mean.aggregator = make_aggregator(AggregatorKind::kMean);
  const auto a = Trainer(model, fed, null_agg).run(gd_solver(model), "x");
  const auto b =
      Trainer(model, fed, explicit_mean).run(gd_solver(model), "x");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash);
  }
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
}

TEST(TrainerDefense, RejectionNeutralizesNanCorruptionUnderTheMean) {
  // 20% NaN injection against the DEFAULT mean aggregator: the always-on
  // finiteness rejection must keep the model finite and converging (the
  // poisoned updates simply lose their seat; survivors renormalize).
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 12;
  opts.seed = 7;
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.2;
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_scale_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  opts.faults = FaultModel(cfg);
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model), "nan_mean");
  EXPECT_GT(trace.back().corrupted_updates, 0u);
  EXPECT_EQ(trace.back().rejected_updates, trace.back().corrupted_updates);
  EXPECT_FALSE(trace.diverged());
  for (const auto& v : trace.final_parameters) EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss);
}

TEST(TrainerDefense, RejectedUpdatesRenormalizeLikeDrops) {
  // Identical local objectives: rejecting the NaN-poisoned updates and
  // renormalizing the honest remainder must reproduce the clean
  // full-participation loss curve to summation rounding, even though the
  // Byzantine devices computed (and shipped) garbage every round.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = replicated_fed(4);
  TrainerOptions clean;
  clean.rounds = 8;
  clean.seed = 19;
  TrainerOptions attacked = clean;
  FaultModelConfig cfg;
  cfg.byzantine_fraction = 0.5;  // persistent per-device Byzantine draw
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_scale_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  attacked.faults = FaultModel(cfg);
  const auto a = Trainer(model, fed, clean).run(gd_solver(model), "clean");
  const auto b =
      Trainer(model, fed, attacked).run(gd_solver(model), "attacked");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  // The attack really ran — and was fully absorbed.
  EXPECT_GT(b.back().rejected_updates, 0u);
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-9);
  }
}

TEST(TrainerDefense, MedianAndTrimmedMeanSurviveNanWithoutRejection) {
  // Defense layer force-disabled: the robust aggregators alone must carry
  // the round — they drop non-finite values coordinate-wise, so a 20% NaN
  // attack leaves the model finite and converging.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  for (const AggregatorKind kind :
       {AggregatorKind::kMedian, AggregatorKind::kTrimmedMean}) {
    TrainerOptions opts;
    opts.rounds = 12;
    opts.seed = 7;
    opts.defense.reject_non_finite = false;
    opts.aggregator = make_aggregator(kind);
    FaultModelConfig cfg;
    cfg.corrupt_prob = 0.2;
    cfg.corrupt_sign_weight = 0.0;
    cfg.corrupt_scale_weight = 0.0;
    cfg.corrupt_stale_weight = 0.0;
    opts.faults = FaultModel(cfg);
    const Trainer trainer(model, fed, opts);
    const auto trace = trainer.run(gd_solver(model), "robust");
    EXPECT_GT(trace.back().corrupted_updates, 0u);
    EXPECT_EQ(trace.back().rejected_updates, 0u);
    EXPECT_FALSE(trace.diverged()) << opts.aggregator->name();
    for (const auto& v : trace.final_parameters) {
      EXPECT_TRUE(std::isfinite(v)) << opts.aggregator->name();
    }
    EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss)
        << opts.aggregator->name();
  }
}

#if !defined(FEDVR_CHECKS_DISABLED)
TEST(TrainerDefense, UnprotectedMeanAbortsAtThePoisonedRound) {
  // With rejection force-disabled AND a non-robust aggregator, the
  // belt-and-braces FEDVR_CHECK_FINITE after aggregation fires at the first
  // round that folds a NaN into the global model. (In -DFEDVR_CHECKS=OFF
  // builds that macro is compiled out; the checks-off behavior — NaN model,
  // diverged() trace — is exercised by the example sweep instead.)
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 12;
  opts.seed = 7;
  opts.defense.reject_non_finite = false;
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.5;
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_scale_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  opts.faults = FaultModel(cfg);
  const Trainer trainer(model, fed, opts);
  EXPECT_THROW((void)trainer.run(gd_solver(model), "poisoned"), util::Error);
}
#endif

TEST(TrainerDefense, MeanDegradesWhereMedianConvergesUnderScaleAttack) {
  // Finite corruption the finiteness scan cannot catch: 60×-scaled deltas.
  // The weighted mean eats them; the coordinate-wise median outvotes them.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(5);
  TrainerOptions base;
  base.rounds = 15;
  base.seed = 11;
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.3;
  cfg.corrupt_nan_weight = 0.0;
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  cfg.corrupt_scale_factor = 60.0;
  base.faults = FaultModel(cfg);
  TrainerOptions with_median = base;
  with_median.aggregator = make_aggregator(AggregatorKind::kMedian);
  const auto mean_trace =
      Trainer(model, fed, base).run(gd_solver(model), "mean");
  const auto median_trace =
      Trainer(model, fed, with_median).run(gd_solver(model), "median");
  EXPECT_GT(mean_trace.back().corrupted_updates, 0u);
  // Nothing is rejected — scale corruption is finite and no norm bound is
  // set — so any robustness below comes from the aggregator alone.
  EXPECT_EQ(mean_trace.back().rejected_updates, 0u);
  EXPECT_FALSE(median_trace.diverged());
  EXPECT_LT(median_trace.back().train_loss,
            median_trace.rounds.front().train_loss);
  // The attacked mean's worst round is far above the median's: the scaled
  // updates repeatedly blast the averaged model away from the optimum.
  EXPECT_GT(mean_trace.max_train_loss(), 10.0 * median_trace.max_train_loss());
}

TEST(TrainerDefense, NormBoundRejectsFiniteMagnitudeExplosions) {
  // The norm bound catches what the finiteness scan cannot: finite but
  // hugely scaled updates. With every poisoned update rejected, the
  // replicated fixture again pins the loss curve to the clean run. The
  // 10⁴ scale keeps corrupted deltas above the bound even in late rounds
  // where honest deltas have contracted to near zero (a fixed bound cannot
  // separate a mild scaling from an honest update forever).
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = replicated_fed(4);
  TrainerOptions clean;
  clean.rounds = 8;
  clean.seed = 19;
  TrainerOptions attacked = clean;
  FaultModelConfig cfg;
  cfg.byzantine_fraction = 0.5;
  cfg.corrupt_nan_weight = 0.0;
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  cfg.corrupt_scale_factor = 1e4;
  attacked.faults = FaultModel(cfg);
  attacked.defense.update_norm_bound = 4.0;
  const std::vector<double> w0(kDim, 0.0);
  const auto a =
      Trainer(model, fed, clean).run(gd_solver(model), "clean", w0);
  const auto b =
      Trainer(model, fed, attacked).run(gd_solver(model), "bounded", w0);
  EXPECT_GT(b.back().rejected_updates, 0u);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-9);
  }
}

TEST(TrainerDefense, QuarantineLifecycleIsExact) {
  // Every device NaN-corrupts every round; strikes=2, quarantine=3 rounds.
  // The full lifecycle is then a fixed arithmetic pattern:
  //   r1: all rejected (strike 1)      r2: all rejected → quarantined to r5
  //   r3-r5: all quarantined           r6: back, rejected (strike 1)
  //   r7: rejected → quarantined again
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(3);
  const std::size_t n = fed.num_devices();
  TrainerOptions opts;
  opts.rounds = 7;
  opts.faults = FaultModel(always_corrupt(CorruptionKind::kNanInject));
  opts.defense.quarantine_strikes = 2;
  opts.defense.quarantine_rounds = 3;
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 0.5);
  const auto trace = trainer.run(gd_solver(model), "quarantine", w0);
  // Nothing is ever accepted: the model never moves.
  EXPECT_EQ(trace.final_parameters, w0);
  ASSERT_EQ(trace.rounds.size(), 7u);
  const auto& r = trace.rounds;
  const std::size_t expected_rejected[] = {n,     2 * n, 2 * n, 2 * n,
                                           2 * n, 3 * n, 4 * n};
  const std::size_t expected_quarantined[] = {0, 0, n, 2 * n, 3 * n,
                                              3 * n, 3 * n};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(r[i].rejected_updates, expected_rejected[i]) << "round " << i;
    EXPECT_EQ(r[i].quarantined_device_rounds, expected_quarantined[i])
        << "round " << i;
    // Corrupted counts delivered updates, so it tracks rejected exactly.
    EXPECT_EQ(r[i].corrupted_updates, r[i].rejected_updates) << "round " << i;
  }
}

TEST(TrainerDefense, QuarantineComposesWithClientSampling) {
  // devices_per_round draws from the full population; quarantine then
  // filters the draw. With every device corrupt and strikes=1, the pool
  // shrinks round by round until whole rounds are empty — the trainer must
  // ride through zero-participant rounds without touching the model.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(4);
  TrainerOptions opts;
  opts.rounds = 6;
  opts.seed = 5;
  opts.devices_per_round = 2;
  opts.faults = FaultModel(always_corrupt(CorruptionKind::kNanInject));
  opts.defense.quarantine_strikes = 1;
  opts.defense.quarantine_rounds = 4;
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, -0.75);
  const auto trace = trainer.run(gd_solver(model), "sampled", w0);
  EXPECT_EQ(trace.final_parameters, w0);
  EXPECT_GT(trace.back().rejected_updates, 0u);
  EXPECT_GT(trace.back().quarantined_device_rounds, 0u);
  // Selection happens before the quarantine filter, so enabling quarantine
  // must not perturb the kSelection stream: the same seed without defense
  // sees the same per-round corrupted (i.e. selected+delivered) schedule
  // for the rounds before anyone is quarantined (round 1 here).
  TrainerOptions no_defense = opts;
  no_defense.defense = DefenseOptions{};
  no_defense.defense.reject_non_finite = false;
  no_defense.aggregator = make_aggregator(AggregatorKind::kMedian);
  const auto open = Trainer(model, fed, no_defense)
                        .run(gd_solver(model), "open", w0);
  EXPECT_EQ(open.rounds.front().corrupted_updates,
            trace.rounds.front().corrupted_updates);
}

TEST(TrainerDefense, StaleReplayFreezesFreeRiders) {
  // A replaying device re-sends its previous upload without solving. With
  // EVERY device replaying from round 1, everyone echoes the broadcast w0:
  // the model never moves and no device ever evaluates a gradient.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(3);
  TrainerOptions opts;
  opts.rounds = 5;
  opts.faults = FaultModel(always_corrupt(CorruptionKind::kStaleReplay));
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 1.25);
  const auto trace = trainer.run(gd_solver(model), "replay", w0);
  EXPECT_EQ(trace.final_parameters, w0);
  EXPECT_EQ(trace.back().sample_grad_evals, 0u);
  EXPECT_EQ(trace.back().corrupted_updates, 5u * fed.num_devices());
  // Replayed models are finite and within any norm bound: never rejected.
  EXPECT_EQ(trace.back().rejected_updates, 0u);
}

TEST(TrainerDefense, SignFlipMirrorsTheHonestStep) {
  // One device, always sign-flipped: the server receives 2·w̄ - w_n, so the
  // model walks AWAY from the optimum along the honest trajectory. The
  // loss must be monotonically nondecreasing — and strictly worse by the
  // end — instead of converging.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(1);
  TrainerOptions opts;
  opts.rounds = 5;
  opts.faults = FaultModel(always_corrupt(CorruptionKind::kSignFlip));
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model), "flip");
  EXPECT_GT(trace.back().train_loss, trace.rounds.front().train_loss);
  EXPECT_EQ(trace.back().corrupted_updates, 5u);
}

TEST(TrainerDefense, ZeroSurvivorDeadlineRoundsSkipDefenseAndAggregation) {
  // Deadline below every device's round time: zero survivors reach the
  // defense layer, no aggregator runs, and the defense counters stay zero
  // even with corruption and quarantine armed.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(2);
  TrainerOptions opts;
  opts.rounds = 3;
  opts.timing = TimingModel{.d_com = 1.0, .d_cmp = 1.0};
  opts.round_deadline = 0.5;
  opts.faults = FaultModel(always_corrupt(CorruptionKind::kNanInject));
  opts.defense.quarantine_strikes = 1;
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 2.0);
  const auto trace = trainer.run(gd_solver(model), "nobody", w0);
  EXPECT_EQ(trace.final_parameters, w0);
  EXPECT_EQ(trace.back().deadline_misses, 3u * fed.num_devices());
  EXPECT_EQ(trace.back().corrupted_updates, 0u);
  EXPECT_EQ(trace.back().rejected_updates, 0u);
  EXPECT_EQ(trace.back().quarantined_device_rounds, 0u);
}

TEST(TrainerDefense, DefenseCountersAccumulateMonotonically) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(5);
  TrainerOptions opts;
  opts.rounds = 10;
  opts.seed = 13;
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.4;
  cfg.dropout_prob = 0.1;
  opts.faults = FaultModel(cfg);
  opts.defense.quarantine_strikes = 1;
  opts.defense.quarantine_rounds = 2;
  opts.aggregator = make_aggregator(AggregatorKind::kTrimmedMean);
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model), "t");
  EXPECT_GT(trace.back().corrupted_updates, 0u);
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    EXPECT_GE(trace.rounds[i].corrupted_updates,
              trace.rounds[i - 1].corrupted_updates);
    EXPECT_GE(trace.rounds[i].rejected_updates,
              trace.rounds[i - 1].rejected_updates);
    EXPECT_GE(trace.rounds[i].quarantined_device_rounds,
              trace.rounds[i - 1].quarantined_device_rounds);
  }
}

TEST(TrainerDefense, EveryAggregatorIsBitIdenticalAcrossPoolSizesUnderAttack) {
  // The acceptance bar: with a corruption mix in flight (NaN + sign flip +
  // scale + replay) and quarantine armed, all four aggregators must produce
  // bit-identical traces for pool sizes 1, 2, and N.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(5);
  for (const std::string_view name : aggregator_names()) {
    TrainerOptions opts;
    opts.rounds = 8;
    opts.seed = 23;
    FaultModelConfig cfg;
    cfg.corrupt_prob = 0.5;
    cfg.dropout_prob = 0.1;
    opts.faults = FaultModel(cfg);
    opts.defense.quarantine_strikes = 2;
    opts.defense.quarantine_rounds = 2;
    opts.aggregator = make_aggregator(*aggregator_kind_from_name(name));
    const Trainer trainer(model, fed, opts);
    auto run_with_pool = [&](std::size_t threads) {
      util::ThreadPool::reset_global(threads);
      return trainer.run(gd_solver(model), "attacked");
    };
    const auto serial = run_with_pool(1);
    const auto two = run_with_pool(2);
    const auto full = run_with_pool(0);
    util::ThreadPool::reset_global(0);
    ASSERT_EQ(serial.rounds.size(), two.rounds.size());
    ASSERT_EQ(serial.rounds.size(), full.rounds.size());
    for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
      EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash)
          << name << " round " << i;
      EXPECT_EQ(serial.rounds[i].param_hash, full.rounds[i].param_hash)
          << name << " round " << i;
      EXPECT_EQ(serial.rounds[i].corrupted_updates,
                full.rounds[i].corrupted_updates);
      EXPECT_EQ(serial.rounds[i].rejected_updates,
                full.rounds[i].rejected_updates);
      EXPECT_EQ(serial.rounds[i].quarantined_device_rounds,
                full.rounds[i].quarantined_device_rounds);
    }
    EXPECT_EQ(serial.final_param_hash, full.final_param_hash);
    // The corruption mix actually fired.
    EXPECT_GT(serial.back().corrupted_updates, 0u) << name;
  }
}

TEST(TrainerDefense, DefenseSurvivesDisabledCheckLayer) {
  // The defense layer is the production path, NOT debug instrumentation: it
  // must reject NaN updates with the FEDVR_CHECKS runtime gate off.
  const bool prev = check::set_enabled(false);
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 8;
  opts.seed = 7;
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.3;
  cfg.corrupt_sign_weight = 0.0;
  cfg.corrupt_scale_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  opts.faults = FaultModel(cfg);
  opts.defense.quarantine_strikes = 2;
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model), "nochecks");
  check::set_enabled(prev);
  EXPECT_GT(trace.back().rejected_updates, 0u);
  EXPECT_FALSE(trace.diverged());
  for (const auto& v : trace.final_parameters) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace fedvr::fl
