// Fault-injection integration: the trainer must degrade gracefully under
// crashes, stragglers, lossy uplinks, and round deadlines, while keeping
// the repo's two contracts intact:
//   * determinism — a fixed seed yields bit-identical traces for any
//     thread-pool size, faults included;
//   * no-fault neutrality — with the FaultModel disabled the engine takes
//     the exact pre-fault code path (hash-identical traces).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/message.h"
#include "fl/trainer.h"
#include "testing/quadratic_model.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;

constexpr std::size_t kDim = 5;

opt::LocalSolver gd_solver(std::shared_ptr<const nn::Model> model,
                           std::size_t tau = 4) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = tau;
  o.eta = 0.2;
  o.mu = 0.5;
  return opt::LocalSolver(std::move(model), o);
}

data::FederatedDataset small_fed(std::size_t devices = 4) {
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    fed.train.push_back(quadratic_dataset(10 + 3 * d, kDim,
                                          static_cast<double>(d), 0.3,
                                          700 + d));
    fed.test.push_back(
        quadratic_dataset(4, kDim, static_cast<double>(d), 0.3, 800 + d));
  }
  return fed;
}

/// Devices with *identical local objectives* but unequal aggregation
/// weights: device n holds (n + 1) copies of the same base dataset, so the
/// per-device mean — and hence the full-gradient local trajectory — is the
/// same everywhere while D_n/D varies. Any survivor subset, renormalized to
/// weight one, must therefore aggregate to exactly the full-participation
/// model; a renormalization bug shows up as a hash divergence.
data::FederatedDataset replicated_fed(std::size_t devices) {
  const data::Dataset base = quadratic_dataset(10, kDim, 1.5, 0.4, 900);
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    data::Dataset copies(base.sample_shape(), 0, 2);
    for (std::size_t rep = 0; rep <= d; ++rep) copies.append(base);
    fed.train.push_back(std::move(copies));
    fed.test.push_back(quadratic_dataset(4, kDim, 1.5, 0.4, 950 + d));
  }
  return fed;
}

FaultModelConfig mixed_faults() {
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.2;
  cfg.straggler_prob = 0.4;
  cfg.straggler_slowdown = 3.0;
  cfg.uplink_loss_prob = 0.3;
  cfg.uplink_max_retries = 2;
  cfg.retry_backoff = 2.0;
  return cfg;
}

TEST(TrainerFaults, DisabledModelMatchesDefaultOptionsBitForBit) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions plain;
  plain.rounds = 6;
  plain.seed = 17;
  TrainerOptions with_disabled_model = plain;
  with_disabled_model.faults = FaultModel{};  // explicit no-op
  const Trainer t1(model, fed, plain);
  const Trainer t2(model, fed, with_disabled_model);
  const auto a = t1.run(gd_solver(model), "x");
  const auto b = t2.run(gd_solver(model), "x");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash);
    EXPECT_EQ(a.rounds[i].dropped_devices, 0u);
    EXPECT_EQ(a.rounds[i].straggler_devices, 0u);
    EXPECT_EQ(a.rounds[i].uplink_retries, 0u);
    EXPECT_EQ(a.rounds[i].deadline_misses, 0u);
  }
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
}

TEST(TrainerFaults, RealizedRoundTimeEqualsAnalyticOnNoFaultPath) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 3;
  opts.timing = TimingModel{.d_com = 2.0, .d_cmp = 0.25};
  const Trainer trainer(model, fed, opts);
  const std::size_t tau = 4;
  const auto trace = trainer.run(gd_solver(model, tau), "t");
  for (const auto& r : trace.rounds) {
    EXPECT_DOUBLE_EQ(r.realized_round_time, opts.timing.round_time(tau));
  }
}

TEST(TrainerFaults, TracesAreBitIdenticalAcrossPoolSizes) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(5);
  TrainerOptions opts;
  opts.rounds = 8;
  opts.seed = 23;
  opts.faults = FaultModel(mixed_faults());
  const Trainer trainer(model, fed, opts);

  auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool::reset_global(threads);
    return trainer.run(gd_solver(model), "faulted");
  };
  const auto serial = run_with_pool(1);
  const auto two = run_with_pool(2);
  const auto full = run_with_pool(0);
  util::ThreadPool::reset_global(0);

  ASSERT_EQ(serial.rounds.size(), two.rounds.size());
  ASSERT_EQ(serial.rounds.size(), full.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash);
    EXPECT_EQ(serial.rounds[i].param_hash, full.rounds[i].param_hash);
    EXPECT_EQ(serial.rounds[i].dropped_devices, two.rounds[i].dropped_devices);
    EXPECT_EQ(serial.rounds[i].dropped_devices,
              full.rounds[i].dropped_devices);
    EXPECT_EQ(serial.rounds[i].undelivered_updates,
              full.rounds[i].undelivered_updates);
    EXPECT_EQ(serial.rounds[i].straggler_devices,
              full.rounds[i].straggler_devices);
    EXPECT_EQ(serial.rounds[i].uplink_retries, full.rounds[i].uplink_retries);
    EXPECT_DOUBLE_EQ(serial.rounds[i].model_time, full.rounds[i].model_time);
    EXPECT_DOUBLE_EQ(serial.rounds[i].realized_round_time,
                     full.rounds[i].realized_round_time);
  }
  EXPECT_EQ(serial.final_param_hash, full.final_param_hash);
  // The fault sequence actually fired (otherwise this test proves nothing).
  EXPECT_GT(serial.back().dropped_devices + serial.back().straggler_devices,
            0u);
}

TEST(TrainerFaults, SurvivorWeightsRenormalizeToOne) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = replicated_fed(4);
  TrainerOptions plain;
  plain.rounds = 10;
  plain.seed = 31;  // chosen so every round keeps at least one survivor
  TrainerOptions faulty = plain;
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.3;
  faulty.faults = FaultModel(cfg);
  const Trainer t1(model, fed, plain);
  const Trainer t2(model, fed, faulty);
  const auto a = t1.run(gd_solver(model), "full");
  const auto b = t2.run(gd_solver(model), "dropped");
  // Identical local objectives: any renormalized survivor average equals
  // the full-participation average up to summation rounding. A broken
  // renormalization instead scales the model by the surviving weight mass
  // (~0.7 here) — off by ~30%, not 1e-9.
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-9);
  }
  ASSERT_EQ(a.final_parameters.size(), b.final_parameters.size());
  for (std::size_t j = 0; j < a.final_parameters.size(); ++j) {
    EXPECT_NEAR(a.final_parameters[j], b.final_parameters[j], 1e-9);
  }
  EXPECT_GT(b.back().dropped_devices, 0u);  // faults really fired
}

TEST(TrainerFaults, ZeroSurvivorRoundsKeepPreviousModel) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 5;
  FaultModelConfig cfg;
  cfg.dropout_prob = 1.0;  // everyone crashes, every round
  opts.faults = FaultModel(cfg);
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 0.25);
  const auto trace = trainer.run(gd_solver(model), "ghost", w0);
  EXPECT_EQ(trace.final_parameters, w0);
  for (const auto& r : trace.rounds) {
    // Crashes are detected immediately: nobody reports, no time passes.
    EXPECT_DOUBLE_EQ(r.realized_round_time, 0.0);
  }
  EXPECT_EQ(trace.back().dropped_devices, 5u * fed.num_devices());
}

TEST(TrainerFaults, StragglersInflateTimeButNotTheModel) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions plain;
  plain.rounds = 4;
  plain.timing = TimingModel{.d_com = 1.0, .d_cmp = 0.5};
  TrainerOptions slow = plain;
  FaultModelConfig cfg;
  cfg.straggler_prob = 1.0;
  cfg.straggler_slowdown = 3.0;
  slow.faults = FaultModel(cfg);
  const Trainer t1(model, fed, plain);
  const Trainer t2(model, fed, slow);
  const std::size_t tau = 4;
  const auto a = t1.run(gd_solver(model, tau), "x");
  const auto b = t2.run(gd_solver(model, tau), "x");
  // Stragglers deliver (late) updates: the model sequence is untouched.
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash);
  }
  // ... but every round now costs d_com + slowdown * d_cmp * tau.
  const double slow_round = 1.0 + 3.0 * 0.5 * static_cast<double>(tau);
  EXPECT_NEAR(b.back().model_time, 4.0 * slow_round, 1e-12);
  EXPECT_EQ(b.back().straggler_devices, 4u * fed.num_devices());
}

TEST(TrainerFaults, ExhaustedUplinkFreezesModelAndChargesRetries) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed();
  TrainerOptions opts;
  opts.rounds = 3;
  opts.timing = TimingModel{.d_com = 1.0, .d_cmp = 0.1};
  FaultModelConfig cfg;
  cfg.uplink_loss_prob = 1.0;  // every transmission lost
  cfg.uplink_max_retries = 2;
  cfg.retry_backoff = 2.0;
  opts.faults = FaultModel(cfg);
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, -1.0);
  const std::size_t tau = 4;
  const auto trace = trainer.run(gd_solver(model, tau), "lossy", w0);
  // No update ever reaches the server. The devices computed and transmitted
  // (the retry budget just ran out), so they count as undelivered updates —
  // dropped_devices means crashes only (CSV schema v2).
  EXPECT_EQ(trace.final_parameters, w0);
  EXPECT_EQ(trace.back().dropped_devices, 0u);
  EXPECT_EQ(trace.back().undelivered_updates, 3u * fed.num_devices());
  EXPECT_EQ(trace.back().uplink_retries, 3u * fed.num_devices() * 2u);
  // Each device holds the barrier for d_com * (1 + 2 + 4) + d_cmp * tau.
  const double per_round = 1.0 * 7.0 + 0.1 * static_cast<double>(tau);
  EXPECT_NEAR(trace.back().model_time, 3.0 * per_round, 1e-12);
  // Wire accounting: one dense downlink message per participant plus THREE
  // uplink attempts per device per round (first try + two retries), all
  // lost — each attempt at the serialized dense-f64 message size.
  const std::size_t msg =
      comm::wire_bytes(comm::DType::kFloat64, kDim, kDim, /*sparse=*/false);
  EXPECT_EQ(trace.back().downlink_bytes, 3u * fed.num_devices() * msg);
  EXPECT_EQ(trace.back().uplink_bytes, 3u * fed.num_devices() * 3u * msg);
  EXPECT_EQ(trace.back().comm_bytes,
            trace.back().uplink_bytes + trace.back().downlink_bytes);
}

TEST(TrainerFaults, DeadlineDegradesSlowDevicesOutOfAggregation) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  // Device 1 is pathologically slow: 1 + 2.0 * tau model-seconds per round.
  const auto fed = small_fed(2);
  TrainerOptions opts;
  opts.rounds = 6;
  opts.seed = 3;
  opts.per_device_timing = {TimingModel{.d_com = 1.0, .d_cmp = 0.1},
                            TimingModel{.d_com = 1.0, .d_cmp = 2.0}};
  opts.round_deadline = 5.0;  // fast device (1.4) beats it; slow (9.0) misses
  const Trainer trainer(model, fed, opts);
  const std::size_t tau = 4;
  const auto trace = trainer.run(gd_solver(model, tau), "deadline");

  // The slow device misses every round; the server waits out the deadline.
  // Deadline misses are undelivered updates, not crashes (CSV schema v2).
  EXPECT_EQ(trace.back().deadline_misses, 6u);
  EXPECT_EQ(trace.back().undelivered_updates, 6u);
  EXPECT_EQ(trace.back().dropped_devices, 0u);
  for (const auto& r : trace.rounds) {
    EXPECT_DOUBLE_EQ(r.realized_round_time, 5.0);
  }
  EXPECT_NEAR(trace.back().model_time, 6.0 * 5.0, 1e-12);

  // With device 1 degraded out every round, the parameter sequence must be
  // bit-identical to training on device 0 alone (its survivor weight
  // renormalizes to exactly 1).
  data::FederatedDataset solo;
  solo.train.push_back(fed.train[0]);
  solo.test.push_back(fed.test[0]);
  TrainerOptions solo_opts;
  solo_opts.rounds = 6;
  solo_opts.seed = 3;
  const Trainer solo_trainer(model, solo, solo_opts);
  const auto solo_trace = solo_trainer.run(gd_solver(model, tau), "solo");
  ASSERT_EQ(trace.rounds.size(), solo_trace.rounds.size());
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    EXPECT_EQ(trace.rounds[i].param_hash, solo_trace.rounds[i].param_hash);
  }
}

TEST(TrainerFaults, DeadlineBelowEveryDeviceFreezesTheModel) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(2);
  TrainerOptions opts;
  opts.rounds = 3;
  opts.timing = TimingModel{.d_com = 1.0, .d_cmp = 1.0};
  opts.round_deadline = 0.5;  // round time is 1 + tau: nobody makes it
  const Trainer trainer(model, fed, opts);
  const std::vector<double> w0(kDim, 2.0);
  const auto trace = trainer.run(gd_solver(model), "impossible", w0);
  EXPECT_EQ(trace.final_parameters, w0);
  EXPECT_EQ(trace.back().deadline_misses, 3u * fed.num_devices());
  for (const auto& r : trace.rounds) {
    EXPECT_DOUBLE_EQ(r.realized_round_time, 0.5);
  }
}

TEST(TrainerFaults, RejectsNonPositiveDeadline) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(2);
  TrainerOptions opts;
  opts.round_deadline = 0.0;
  EXPECT_THROW(Trainer(model, fed, opts), util::Error);
  opts.round_deadline = -1.0;
  EXPECT_THROW(Trainer(model, fed, opts), util::Error);
}

TEST(TrainerFaults, CountersAccumulateMonotonically) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(5);
  TrainerOptions opts;
  opts.rounds = 10;
  opts.seed = 13;
  opts.faults = FaultModel(mixed_faults());
  const Trainer trainer(model, fed, opts);
  const auto trace = trainer.run(gd_solver(model), "t");
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    EXPECT_GE(trace.rounds[i].dropped_devices,
              trace.rounds[i - 1].dropped_devices);
    EXPECT_GE(trace.rounds[i].undelivered_updates,
              trace.rounds[i - 1].undelivered_updates);
    EXPECT_GE(trace.rounds[i].straggler_devices,
              trace.rounds[i - 1].straggler_devices);
    EXPECT_GE(trace.rounds[i].uplink_retries,
              trace.rounds[i - 1].uplink_retries);
    EXPECT_GE(trace.rounds[i].comm_bytes, trace.rounds[i - 1].comm_bytes);
  }
}

}  // namespace
}  // namespace fedvr::fl
