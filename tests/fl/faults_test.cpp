#include "fl/faults.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

TEST(FaultModel, DefaultConstructedIsDisabled) {
  const FaultModel model;
  EXPECT_FALSE(model.enabled());
  const FaultEvent event = model.sample(1, 0, 1);
  EXPECT_FALSE(event.dropped);
  EXPECT_FALSE(event.straggler);
  EXPECT_DOUBLE_EQ(event.slowdown, 1.0);
  EXPECT_EQ(event.uplink_retries, 0u);
  EXPECT_FALSE(event.uplink_failed);
  EXPECT_TRUE(event.delivers_update());
  EXPECT_EQ(event.uplink_attempts(), 1u);
}

TEST(FaultModel, ValidatesConfiguration) {
  FaultModelConfig bad;
  bad.dropout_prob = -0.1;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.dropout_prob = 1.5;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.straggler_prob = 2.0;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.uplink_loss_prob = -1.0;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.straggler_slowdown = 0.5;  // a "straggler" that speeds up is a typo
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.retry_backoff = 0.9;
  EXPECT_THROW(FaultModel{bad}, Error);
}

TEST(FaultModel, EnabledWhenAnyProbabilityIsPositive) {
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  cfg = FaultModelConfig{};
  cfg.straggler_prob = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  cfg = FaultModelConfig{};
  cfg.uplink_loss_prob = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  EXPECT_FALSE(FaultModel(FaultModelConfig{}).enabled());
}

TEST(FaultModel, SampleIsPureInItsCoordinates) {
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.2;
  cfg.straggler_prob = 0.3;
  cfg.uplink_loss_prob = 0.2;
  const FaultModel model(cfg);
  for (std::size_t device = 0; device < 8; ++device) {
    for (std::size_t round = 1; round <= 8; ++round) {
      const FaultEvent a = model.sample(42, device, round);
      const FaultEvent b = model.sample(42, device, round);
      EXPECT_EQ(a.dropped, b.dropped);
      EXPECT_EQ(a.straggler, b.straggler);
      EXPECT_DOUBLE_EQ(a.slowdown, b.slowdown);
      EXPECT_EQ(a.uplink_retries, b.uplink_retries);
      EXPECT_EQ(a.uplink_failed, b.uplink_failed);
    }
  }
}

TEST(FaultModel, DistinctCoordinatesGiveDistinctStreams) {
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.5;
  const FaultModel model(cfg);
  // Over many (device, round) cells, roughly half drop; if the stream were
  // shared across coordinates the outcomes would all coincide.
  std::size_t dropped = 0;
  constexpr std::size_t kCells = 4000;
  for (std::size_t device = 0; device < 40; ++device) {
    for (std::size_t round = 1; round <= kCells / 40; ++round) {
      if (model.sample(7, device, round).dropped) ++dropped;
    }
  }
  const double rate = static_cast<double>(dropped) / kCells;
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(FaultModel, EmpiricalRatesMatchConfiguration) {
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.1;
  cfg.straggler_prob = 0.25;
  cfg.straggler_slowdown = 3.0;
  cfg.uplink_loss_prob = 0.2;
  const FaultModel model(cfg);
  std::size_t dropped = 0, stragglers = 0, retried = 0, surviving = 0;
  constexpr std::size_t kCells = 10000;
  for (std::size_t device = 0; device < 100; ++device) {
    for (std::size_t round = 1; round <= kCells / 100; ++round) {
      const FaultEvent event = model.sample(3, device, round);
      if (event.dropped) {
        ++dropped;
        continue;
      }
      ++surviving;
      if (event.straggler) {
        ++stragglers;
        EXPECT_DOUBLE_EQ(event.slowdown, 3.0);
      } else {
        EXPECT_DOUBLE_EQ(event.slowdown, 1.0);
      }
      if (event.uplink_retries > 0) ++retried;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kCells, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(stragglers) / surviving, 0.25, 0.03);
  // P(at least one retry) = uplink_loss_prob.
  EXPECT_NEAR(static_cast<double>(retried) / surviving, 0.2, 0.03);
}

TEST(FaultModel, RatesHoldInTheSmallCoordinateRegime) {
  // Regression: deriving the stream via util::fork() left the first draw
  // badly non-uniform for small seeds and coordinates — across seeds 1-5,
  // devices 0-5, rounds 1-8 NOT ONE of 240 draws fell below 0.1, so
  // dropout_prob = 0.1 never crashed anyone in a typical small experiment.
  // The dedicated output-fed mixing chain must keep rates honest exactly
  // where real runs live: few devices, few rounds, single-digit seeds.
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.1;
  const FaultModel model(cfg);
  std::size_t dropped = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (std::size_t device = 0; device < 6; ++device) {
      for (std::size_t round = 1; round <= 8; ++round) {
        if (model.sample(seed, device, round).dropped) ++dropped;
      }
    }
  }
  // 240 cells at p = 0.1: expect 24; zero (the fork() behavior) is a
  // ~1e-11 event. The loose band just excludes gross bias.
  EXPECT_GE(dropped, 10u);
  EXPECT_LE(dropped, 45u);
}

TEST(FaultModel, UplinkLossOneAlwaysExhaustsRetries) {
  FaultModelConfig cfg;
  cfg.uplink_loss_prob = 1.0;
  cfg.uplink_max_retries = 2;
  const FaultModel model(cfg);
  for (std::size_t device = 0; device < 5; ++device) {
    const FaultEvent event = model.sample(1, device, 1);
    EXPECT_TRUE(event.uplink_failed);
    EXPECT_EQ(event.uplink_retries, 2u);
    EXPECT_EQ(event.uplink_attempts(), 3u);
    EXPECT_FALSE(event.delivers_update());
  }
}

TEST(FaultEvent, ComMultiplierIsGeometricBackoff) {
  FaultEvent event;
  EXPECT_DOUBLE_EQ(event.com_multiplier(2.0), 1.0);
  event.uplink_retries = 1;
  EXPECT_DOUBLE_EQ(event.com_multiplier(2.0), 1.0 + 2.0);
  event.uplink_retries = 3;
  EXPECT_DOUBLE_EQ(event.com_multiplier(2.0), 1.0 + 2.0 + 4.0 + 8.0);
  // backoff = 1: every retry costs one extra d_com, linearly.
  EXPECT_DOUBLE_EQ(event.com_multiplier(1.0), 4.0);
}

TEST(FaultModel, CrashPreemptsOtherFaults) {
  // dropout_prob = 1: every event is a crash, nothing else fires.
  FaultModelConfig cfg;
  cfg.dropout_prob = 1.0;
  cfg.straggler_prob = 1.0;
  cfg.uplink_loss_prob = 1.0;
  const FaultModel model(cfg);
  const FaultEvent event = model.sample(9, 4, 7);
  EXPECT_TRUE(event.dropped);
  EXPECT_FALSE(event.straggler);
  EXPECT_EQ(event.uplink_retries, 0u);
  EXPECT_FALSE(event.uplink_failed);
}

TEST(FaultModel, ValidatesCorruptionConfiguration) {
  FaultModelConfig bad;
  bad.corrupt_prob = -0.1;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.corrupt_prob = 1.5;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.byzantine_fraction = 2.0;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.corrupt_prob = 0.5;
  bad.corrupt_nan_weight = -1.0;  // negative weights are meaningless
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.corrupt_prob = 0.5;  // ... as is an all-zero mixture when enabled
  bad.corrupt_nan_weight = 0.0;
  bad.corrupt_sign_weight = 0.0;
  bad.corrupt_scale_weight = 0.0;
  bad.corrupt_stale_weight = 0.0;
  EXPECT_THROW(FaultModel{bad}, Error);
  bad = FaultModelConfig{};
  bad.corrupt_prob = 0.5;
  bad.corrupt_scale_factor = 0.0;  // scale must be finite and positive
  EXPECT_THROW(FaultModel{bad}, Error);
  // Zero weight for one kind is fine as long as the mixture is nonempty.
  FaultModelConfig ok;
  ok.corrupt_prob = 0.5;
  ok.corrupt_stale_weight = 0.0;
  EXPECT_TRUE(FaultModel(ok).enabled());
}

TEST(FaultModel, CorruptionAloneEnablesTheModel) {
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  cfg = FaultModelConfig{};
  cfg.byzantine_fraction = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  EXPECT_TRUE(cfg.corruption_enabled());
  EXPECT_FALSE(FaultModelConfig{}.corruption_enabled());
}

TEST(FaultModel, EnablingCorruptionLeavesLegacyFaultFieldsUntouched) {
  // Corruption draws come AFTER the dropout/straggler/uplink draws on the
  // same per-(seed, device, round) stream, so switching corruption on must
  // reproduce the legacy fault sequence bit for bit — an existing faulted
  // experiment's trace is unchanged by adding an attack on top.
  FaultModelConfig legacy;
  legacy.dropout_prob = 0.2;
  legacy.straggler_prob = 0.3;
  legacy.uplink_loss_prob = 0.2;
  FaultModelConfig with_corruption = legacy;
  with_corruption.corrupt_prob = 0.5;
  const FaultModel a(legacy);
  const FaultModel b(with_corruption);
  for (std::size_t device = 0; device < 10; ++device) {
    for (std::size_t round = 1; round <= 10; ++round) {
      const FaultEvent ea = a.sample(42, device, round);
      const FaultEvent eb = b.sample(42, device, round);
      EXPECT_EQ(ea.dropped, eb.dropped);
      EXPECT_EQ(ea.straggler, eb.straggler);
      EXPECT_DOUBLE_EQ(ea.slowdown, eb.slowdown);
      EXPECT_EQ(ea.uplink_retries, eb.uplink_retries);
      EXPECT_EQ(ea.uplink_failed, eb.uplink_failed);
      EXPECT_EQ(ea.corruption, CorruptionKind::kNone);
      EXPECT_FALSE(ea.corrupted());
    }
  }
}

TEST(FaultModel, CorruptionSamplingIsPureAndRateMatches) {
  FaultModelConfig cfg;
  cfg.corrupt_prob = 0.25;
  const FaultModel model(cfg);
  std::size_t corrupted = 0;
  constexpr std::size_t kCells = 4000;
  for (std::size_t device = 0; device < 40; ++device) {
    for (std::size_t round = 1; round <= kCells / 40; ++round) {
      const FaultEvent a = model.sample(11, device, round);
      const FaultEvent b = model.sample(11, device, round);
      EXPECT_EQ(a.corruption, b.corruption);
      EXPECT_EQ(a.byzantine, b.byzantine);
      if (a.corrupted()) ++corrupted;
    }
  }
  EXPECT_NEAR(static_cast<double>(corrupted) / kCells, 0.25, 0.03);
}

TEST(FaultModel, KindWeightsSteerTheMixture) {
  // nan:sign = 3:1, scale/stale off → roughly 75/25 among corrupted events
  // and never a kScale or kStaleReplay.
  FaultModelConfig cfg;
  cfg.corrupt_prob = 1.0;
  cfg.corrupt_nan_weight = 3.0;
  cfg.corrupt_sign_weight = 1.0;
  cfg.corrupt_scale_weight = 0.0;
  cfg.corrupt_stale_weight = 0.0;
  const FaultModel model(cfg);
  std::size_t nan = 0, sign = 0;
  constexpr std::size_t kCells = 4000;
  for (std::size_t device = 0; device < 40; ++device) {
    for (std::size_t round = 1; round <= kCells / 40; ++round) {
      switch (model.sample(5, device, round).corruption) {
        case CorruptionKind::kNanInject: ++nan; break;
        case CorruptionKind::kSignFlip: ++sign; break;
        default: FAIL() << "zero-weight kind drawn";
      }
    }
  }
  EXPECT_EQ(nan + sign, kCells);
  EXPECT_NEAR(static_cast<double>(nan) / kCells, 0.75, 0.03);
}

TEST(FaultModel, ByzantineStatusIsADeviceLevelTrait) {
  // byzantine_fraction marks a device once per seed, not per round: a
  // Byzantine device corrupts EVERY update it delivers, for the whole run.
  FaultModelConfig cfg;
  cfg.byzantine_fraction = 0.4;
  const FaultModel model(cfg);
  std::size_t byzantine_devices = 0;
  constexpr std::size_t kDevices = 200;
  for (std::size_t device = 0; device < kDevices; ++device) {
    const bool flagged = model.is_byzantine(77, device);
    if (flagged) ++byzantine_devices;
    for (std::size_t round = 1; round <= 6; ++round) {
      const FaultEvent event = model.sample(77, device, round);
      EXPECT_EQ(event.byzantine, flagged) << device << "/" << round;
      EXPECT_EQ(event.corrupted(), flagged) << device << "/" << round;
    }
  }
  EXPECT_NEAR(static_cast<double>(byzantine_devices) / kDevices, 0.4, 0.1);
}

TEST(FaultModel, CrashPreemptsCorruption) {
  // A crashed device delivers nothing, so nothing of its can be corrupted.
  FaultModelConfig cfg;
  cfg.dropout_prob = 1.0;
  cfg.corrupt_prob = 1.0;
  const FaultModel model(cfg);
  const FaultEvent event = model.sample(9, 4, 7);
  EXPECT_TRUE(event.dropped);
  EXPECT_EQ(event.corruption, CorruptionKind::kNone);
  EXPECT_FALSE(event.corrupted());
}

TEST(FaultModel, ExhaustedUplinkPreemptsCorruption) {
  // An update that never reaches the server cannot be corrupted either —
  // the corruption counter must mean "poison the server actually received".
  FaultModelConfig cfg;
  cfg.uplink_loss_prob = 1.0;
  cfg.uplink_max_retries = 1;
  cfg.corrupt_prob = 1.0;
  const FaultModel model(cfg);
  const FaultEvent event = model.sample(9, 4, 7);
  EXPECT_TRUE(event.uplink_failed);
  EXPECT_EQ(event.corruption, CorruptionKind::kNone);
}

}  // namespace
}  // namespace fedvr::fl
