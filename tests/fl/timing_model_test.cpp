#include "fl/timing_model.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

TEST(TimingModel, RoundTimeMatchesEq19) {
  const TimingModel tm{.d_com = 2.0, .d_cmp = 0.5};
  EXPECT_DOUBLE_EQ(tm.round_time(1), 2.5);
  EXPECT_DOUBLE_EQ(tm.round_time(10), 7.0);
  EXPECT_DOUBLE_EQ(tm.total_time(4, 10), 28.0);
  EXPECT_DOUBLE_EQ(tm.gamma(), 0.25);
}

TEST(TimingModel, FromGammaNormalizesDcom) {
  const TimingModel tm = TimingModel::from_gamma(0.1);
  EXPECT_DOUBLE_EQ(tm.d_com, 1.0);
  EXPECT_DOUBLE_EQ(tm.d_cmp, 0.1);
  EXPECT_THROW((void)TimingModel::from_gamma(0.0), Error);
}

TEST(TimingModel, ZeroComputationDelayIsAllowed) {
  // d_cmp = 0 models free local computation (gamma -> 0); still a valid
  // round: only communication is charged.
  const TimingModel tm{.d_com = 3.0, .d_cmp = 0.0};
  EXPECT_DOUBLE_EQ(tm.round_time(100), 3.0);
  EXPECT_DOUBLE_EQ(tm.gamma(), 0.0);
}

TEST(TimingModel, RejectsTauZero) {
  const TimingModel tm;
  EXPECT_THROW((void)tm.round_time(0), Error);
  EXPECT_THROW((void)tm.total_time(10, 0), Error);
}

TEST(TimingModel, RejectsNonPositiveComDelay) {
  const TimingModel zero{.d_com = 0.0, .d_cmp = 0.1};
  const TimingModel negative{.d_com = -1.0, .d_cmp = 0.1};
  EXPECT_THROW((void)zero.round_time(1), Error);
  EXPECT_THROW((void)negative.round_time(1), Error);
}

TEST(TimingModel, RejectsNegativeCmpDelay) {
  const TimingModel tm{.d_com = 1.0, .d_cmp = -0.5};
  EXPECT_THROW((void)tm.round_time(1), Error);
  EXPECT_THROW((void)tm.total_time(1, 1), Error);
}

TEST(TimingModel, RejectsZeroRounds) {
  const TimingModel tm;
  EXPECT_THROW((void)tm.total_time(0, 10), Error);
}

TEST(TimingModel, ValidationIsConsistentWithGamma) {
  // gamma() and round_time() agree on what a malformed model is.
  const TimingModel bad{.d_com = 0.0, .d_cmp = 1.0};
  EXPECT_THROW((void)bad.gamma(), Error);
  EXPECT_THROW((void)bad.round_time(1), Error);
}

}  // namespace
}  // namespace fedvr::fl
