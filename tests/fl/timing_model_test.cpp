#include "fl/timing_model.h"

#include <gtest/gtest.h>

#include "check/check.h"
#include "util/error.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

TEST(TimingModel, RoundTimeMatchesEq19) {
  const TimingModel tm{.d_com = 2.0, .d_cmp = 0.5};
  EXPECT_DOUBLE_EQ(tm.round_time(1), 2.5);
  EXPECT_DOUBLE_EQ(tm.round_time(10), 7.0);
  EXPECT_DOUBLE_EQ(tm.total_time(4, 10), 28.0);
  EXPECT_DOUBLE_EQ(tm.gamma(), 0.25);
}

TEST(TimingModel, FromGammaNormalizesDcom) {
  const TimingModel tm = TimingModel::from_gamma(0.1);
  EXPECT_DOUBLE_EQ(tm.d_com, 1.0);
  EXPECT_DOUBLE_EQ(tm.d_cmp, 0.1);
  EXPECT_THROW((void)TimingModel::from_gamma(0.0), Error);
}

TEST(TimingModel, ZeroComputationDelayIsAllowed) {
  // d_cmp = 0 models free local computation (gamma -> 0); still a valid
  // round: only communication is charged.
  const TimingModel tm{.d_com = 3.0, .d_cmp = 0.0};
  EXPECT_DOUBLE_EQ(tm.round_time(100), 3.0);
  EXPECT_DOUBLE_EQ(tm.gamma(), 0.0);
}

TEST(TimingModel, RejectsTauZero) {
  const TimingModel tm;
  EXPECT_THROW((void)tm.round_time(0), Error);
  EXPECT_THROW((void)tm.total_time(10, 0), Error);
}

TEST(TimingModel, RejectsNonPositiveComDelay) {
  const TimingModel zero{.d_com = 0.0, .d_cmp = 0.1};
  const TimingModel negative{.d_com = -1.0, .d_cmp = 0.1};
  EXPECT_THROW((void)zero.round_time(1), Error);
  EXPECT_THROW((void)negative.round_time(1), Error);
}

TEST(TimingModel, RejectsNegativeCmpDelay) {
  const TimingModel tm{.d_com = 1.0, .d_cmp = -0.5};
  EXPECT_THROW((void)tm.round_time(1), Error);
  EXPECT_THROW((void)tm.total_time(1, 1), Error);
}

TEST(TimingModel, RejectsZeroRounds) {
  const TimingModel tm;
  EXPECT_THROW((void)tm.total_time(0, 10), Error);
}

TEST(TimingModel, ValidationIsConsistentWithGamma) {
  // gamma() and round_time() agree on what a malformed model is.
  const TimingModel bad{.d_com = 0.0, .d_cmp = 1.0};
  EXPECT_THROW((void)bad.gamma(), Error);
  EXPECT_THROW((void)bad.round_time(1), Error);
}

TEST(TimingModel, FaultAdjustedRoundTimeScalesEachDelay) {
  // t = d_com * com_multiplier + d_cmp * slowdown * tau: a straggler only
  // inflates compute, a retried uplink only inflates communication.
  const TimingModel tm{.d_com = 2.0, .d_cmp = 0.5};
  EXPECT_DOUBLE_EQ(tm.round_time(10, 3.0, 1.0), 2.0 + 0.5 * 3.0 * 10.0);
  EXPECT_DOUBLE_EQ(tm.round_time(10, 1.0, 7.0), 2.0 * 7.0 + 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(tm.round_time(10, 3.0, 7.0),
                   2.0 * 7.0 + 0.5 * 3.0 * 10.0);
}

TEST(TimingModel, NeutralFaultFactorsAreBitIdenticalToPlainRoundTime) {
  // The trainer's no-fault path must stay hash-identical to pre-fault
  // builds, so multiplying by exactly 1.0 must not perturb a single bit.
  const TimingModel tm{.d_com = 1.0 / 3.0, .d_cmp = 0.1};
  for (std::size_t tau : {1u, 7u, 100u}) {
    EXPECT_EQ(tm.round_time(tau, 1.0, 1.0), tm.round_time(tau));
  }
}

TEST(TimingModel, FaultAdjustedRoundTimeRejectsSubUnitFactors) {
  // Slowdowns and retry multipliers < 1 would mean faults speed devices
  // up — always a caller bug.
  const TimingModel tm;
  EXPECT_THROW((void)tm.round_time(1, 0.5, 1.0), Error);
  EXPECT_THROW((void)tm.round_time(1, 1.0, 0.9), Error);
  EXPECT_THROW((void)tm.round_time(0, 1.0, 1.0), Error);
}

TEST(TimingModel, ValidationSurvivesDisabledCheckLayer) {
  // TimingModel validation is ARGUMENT validation via util/error.h, not a
  // hot-path fedvr::check invariant: disabling the gated check layer (the
  // runtime analog of a -DFEDVR_CHECKS=OFF build) must not silence it.
  const bool prev = check::set_enabled(false);
  const TimingModel bad{.d_com = -1.0, .d_cmp = 0.1};
  EXPECT_THROW((void)bad.validate(), Error);
  EXPECT_THROW((void)bad.round_time(5), Error);
  EXPECT_THROW((void)bad.round_time(5, 2.0, 2.0), Error);
  EXPECT_THROW((void)bad.gamma(), Error);
  check::set_enabled(prev);
}

}  // namespace
}  // namespace fedvr::fl
