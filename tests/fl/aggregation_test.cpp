// Unit tests for the pluggable line-12 seam (fl/aggregation.h): the mean
// aggregator must reproduce the trainer's historical arithmetic exactly,
// the robust aggregators must shrug off poisoned updates, and every
// implementation must reduce in a pool-size-independent order.
#include "fl/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/vecops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::span<const double>> views(
    const std::vector<std::vector<double>>& updates) {
  std::vector<std::span<const double>> v;
  v.reserve(updates.size());
  for (const auto& u : updates) v.emplace_back(u);
  return v;
}

std::vector<double> aggregate(const Aggregator& agg,
                              const std::vector<double>& anchor,
                              const std::vector<std::vector<double>>& updates,
                              std::vector<double> weights = {}) {
  if (weights.empty()) weights.assign(updates.size(), 1.0);
  std::vector<double> out(anchor.size(), -123.0);
  agg.aggregate(anchor, views(updates), weights, out);
  return out;
}

TEST(Aggregation, FactoryNamesRoundTrip) {
  for (const std::string_view name : aggregator_names()) {
    const auto kind = aggregator_kind_from_name(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_EQ(make_aggregator(*kind)->name(), name);
  }
  EXPECT_FALSE(aggregator_kind_from_name("krum").has_value());
  EXPECT_FALSE(aggregator_kind_from_name("").has_value());
}

TEST(Aggregation, OptionsAreValidatedAlwaysOn) {
  AggregatorOptions bad;
  bad.trim_fraction = 0.5;
  EXPECT_THROW((void)make_aggregator(AggregatorKind::kTrimmedMean, bad),
               Error);
  bad.trim_fraction = -0.1;
  EXPECT_THROW((void)make_aggregator(AggregatorKind::kTrimmedMean, bad),
               Error);
  bad = AggregatorOptions{};
  bad.clip_norm = kNaN;
  EXPECT_THROW((void)make_aggregator(AggregatorKind::kNormClippedMean, bad),
               Error);
}

TEST(DefenseOptionsTest, ValidatesAlwaysOn) {
  DefenseOptions bad;
  bad.update_norm_bound = -1.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = DefenseOptions{};
  bad.update_norm_bound = kInf;
  EXPECT_THROW(bad.validate(), Error);
  bad = DefenseOptions{};
  bad.quarantine_strikes = 2;
  bad.quarantine_rounds = 0;
  EXPECT_THROW(bad.validate(), Error);
  DefenseOptions ok;  // defaults must validate
  ok.validate();
  EXPECT_FALSE(ok.quarantine_enabled());
}

TEST(MeanAggregatorTest, MatchesTheHistoricalLine12Arithmetic) {
  // The exact operation sequence the pre-seam trainer ran: weight_sum
  // summed in update order, fill(0), then accumulate_weighted(w_i/sum) per
  // update in order. Equality below is EXACT, not approximate.
  const auto agg = make_aggregator(AggregatorKind::kMean);
  const std::vector<double> anchor = {0.0, 0.0, 0.0};
  const std::vector<std::vector<double>> updates = {
      {1.0, 2.0, 3.0}, {-0.5, 0.25, 7.0}, {0.125, -2.0, 0.75}};
  const std::vector<double> weights = {0.2, 0.5, 0.3};
  const auto out = aggregate(*agg, anchor, updates, weights);

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  std::vector<double> expected(3);
  tensor::fill(expected, 0.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    tensor::accumulate_weighted(weights[i] / weight_sum, updates[i], expected);
  }
  for (std::size_t j = 0; j < expected.size(); ++j) {
    EXPECT_EQ(out[j], expected[j]) << j;
  }
}

TEST(MedianAggregatorTest, TakesCoordinateWiseMedian) {
  const auto agg = make_aggregator(AggregatorKind::kMedian);
  const std::vector<double> anchor = {0.0, 0.0};
  // Odd count: the middle value, per coordinate, regardless of weights.
  const auto odd = aggregate(*agg, anchor,
                             {{1.0, 9.0}, {100.0, -3.0}, {2.0, 5.0}},
                             {0.98, 0.01, 0.01});
  EXPECT_DOUBLE_EQ(odd[0], 2.0);
  EXPECT_DOUBLE_EQ(odd[1], 5.0);
  // Even count: the average of the two middle values.
  const auto even =
      aggregate(*agg, anchor, {{1.0, 0.0}, {3.0, 0.0}, {7.0, 0.0},
                               {100.0, 0.0}});
  EXPECT_DOUBLE_EQ(even[0], 5.0);
}

TEST(MedianAggregatorTest, IgnoresNonFiniteValuesPerCoordinate) {
  const auto agg = make_aggregator(AggregatorKind::kMedian);
  const std::vector<double> anchor = {-7.0, -7.0, -7.0};
  // Coordinate 0: one NaN among three → median of the finite two.
  // Coordinate 1: +Inf outlier is ignored the same way.
  // Coordinate 2: every value non-finite → fall back to the anchor.
  const auto out = aggregate(
      *agg, anchor,
      {{kNaN, 4.0, kInf}, {2.0, kInf, kNaN}, {6.0, 8.0, -kInf}});
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
  EXPECT_DOUBLE_EQ(out[2], -7.0);
}

TEST(MedianAggregatorTest, SingleUpdatePassesThrough) {
  const auto agg = make_aggregator(AggregatorKind::kMedian);
  const auto out = aggregate(*agg, {0.0, 0.0}, {{3.0, -1.5}});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], -1.5);
}

TEST(TrimmedMeanAggregatorTest, TrimsTailsPerCoordinate) {
  AggregatorOptions opts;
  opts.trim_fraction = 0.2;  // 5 values → trim 1 from each end
  const auto agg = make_aggregator(AggregatorKind::kTrimmedMean, opts);
  const auto out = aggregate(
      *agg, {0.0},
      {{-1000.0}, {1.0}, {2.0}, {3.0}, {1000.0}});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
}

TEST(TrimmedMeanAggregatorTest, ZeroTrimIsTheUnweightedMean) {
  AggregatorOptions opts;
  opts.trim_fraction = 0.0;
  const auto agg = make_aggregator(AggregatorKind::kTrimmedMean, opts);
  const auto out = aggregate(*agg, {0.0}, {{1.0}, {2.0}, {6.0}});
  EXPECT_DOUBLE_EQ(out[0], 3.0);
}

TEST(TrimmedMeanAggregatorTest, NonFiniteValuesLoseTheirVote) {
  AggregatorOptions opts;
  opts.trim_fraction = 0.25;  // of the 3 finite values, trim 0 (floor(0.75))
  const auto agg = make_aggregator(AggregatorKind::kTrimmedMean, opts);
  const auto out = aggregate(*agg, {9.0, 9.0},
                             {{kNaN, kNaN}, {1.0, kInf}, {2.0, kNaN},
                              {3.0, -kInf}});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 9.0);  // all non-finite → anchor
}

TEST(NormClippedMeanAggregatorTest, FixedBoundClipsExplodedDelta) {
  AggregatorOptions opts;
  opts.clip_norm = 1.0;
  const auto agg = make_aggregator(AggregatorKind::kNormClippedMean, opts);
  const std::vector<double> anchor = {0.0, 0.0};
  // Update 0 has delta norm 1 (untouched); update 1 has norm 100, clipped
  // down to a unit vector along +x.
  const auto out = aggregate(*agg, anchor, {{0.0, 1.0}, {100.0, 0.0}});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(NormClippedMeanAggregatorTest, AdaptiveBoundUsesMedianNorm) {
  const auto agg = make_aggregator(AggregatorKind::kNormClippedMean);
  const std::vector<double> anchor = {0.0};
  // Norms 1, 2, 100 → median bound 2: the attacker contributes 2, not 100.
  const auto out =
      aggregate(*agg, anchor, {{1.0}, {2.0}, {100.0}});
  EXPECT_DOUBLE_EQ(out[0], (1.0 + 2.0 + 2.0) / 3.0);
}

TEST(NormClippedMeanAggregatorTest, NonFiniteUpdatesAreExcluded) {
  AggregatorOptions opts;
  opts.clip_norm = 10.0;
  const auto agg = make_aggregator(AggregatorKind::kNormClippedMean, opts);
  const auto out = aggregate(*agg, {0.0}, {{kNaN}, {4.0}});
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  // Every update non-finite → the anchor is kept.
  const auto frozen = aggregate(*agg, {3.5}, {{kNaN}, {kInf}});
  EXPECT_DOUBLE_EQ(frozen[0], 3.5);
}

TEST(NormClippedMeanAggregatorTest, ZeroDeltasAreAFixedPoint) {
  const auto agg = make_aggregator(AggregatorKind::kNormClippedMean);
  const std::vector<double> anchor = {1.0, -2.0};
  // All deltas zero → adaptive bound 0, but 0/0 never happens: norms at the
  // bound are left unscaled.
  const auto out = aggregate(*agg, anchor, {{1.0, -2.0}, {1.0, -2.0}});
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Aggregation, EveryAggregatorIsBitIdenticalAcrossPoolSizes) {
  // The coordinate-chunked implementations schedule chunks onto whatever
  // pool exists; the per-coordinate arithmetic must not notice. Use a dim
  // large enough for several 256-coordinate chunks and values awkward
  // enough (irrational-ish magnitudes) that any reduction-order change
  // would flip low bits.
  constexpr std::size_t kDim = 1000;
  constexpr std::size_t kUpdates = 70;  // > the 64-value stack fast path
  std::vector<double> anchor(kDim);
  std::vector<std::vector<double>> updates(kUpdates,
                                           std::vector<double>(kDim));
  std::vector<double> weights(kUpdates);
  for (std::size_t i = 0; i < kUpdates; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 3);
    for (std::size_t j = 0; j < kDim; ++j) {
      updates[i][j] = std::sin(static_cast<double>(i * kDim + j)) *
                      (j % 97 == 0 ? 1e6 : 1.0);
    }
  }
  for (std::size_t j = 0; j < kDim; ++j) {
    anchor[j] = std::cos(static_cast<double>(j));
  }
  for (const std::string_view name : aggregator_names()) {
    const auto agg = make_aggregator(*aggregator_kind_from_name(name));
    auto run_with_pool = [&](std::size_t threads) {
      util::ThreadPool::reset_global(threads);
      std::vector<double> out(kDim);
      agg->aggregate(anchor, views(updates), weights, out);
      return out;
    };
    const auto serial = run_with_pool(1);
    const auto two = run_with_pool(2);
    const auto full = run_with_pool(0);
    util::ThreadPool::reset_global(0);
    EXPECT_EQ(serial, two) << name;
    EXPECT_EQ(serial, full) << name;
  }
}

}  // namespace
}  // namespace fedvr::fl
