// Integration tests for the event-driven round engine: sampled
// participation (m ≪ N) with faults and compression must stay bit-identical
// across thread-pool sizes, the flat tree aggregator must reproduce the
// legacy mean hashes exactly, and a large virtual fleet must run rounds in
// O(m·dim) — only the sampled participants ever materialize.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "data/federation.h"
#include "fl/hierarchy.h"
#include "fl/trainer.h"
#include "testing/quadratic_model.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;

constexpr std::size_t kDim = 5;

opt::LocalSolver gd_solver(std::shared_ptr<const nn::Model> model,
                           std::size_t tau = 4) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kFullGradient;
  o.tau = tau;
  o.eta = 0.2;
  o.mu = 0.5;
  return opt::LocalSolver(std::move(model), o);
}

data::FederatedDataset small_fed(std::size_t devices) {
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    fed.train.push_back(quadratic_dataset(10 + 3 * (d % 4), kDim,
                                          static_cast<double>(d % 5), 0.3,
                                          700 + d));
    fed.test.push_back(
        quadratic_dataset(4, kDim, static_cast<double>(d % 5), 0.3, 800 + d));
  }
  return fed;
}

/// A quadratic fleet generated on demand: pure in the device index, O(1)
/// storage at any N.
std::shared_ptr<data::VirtualFederation> virtual_quadratic_fleet(
    std::size_t num_devices) {
  auto size_fn = [](std::size_t device) { return 8 + device % 5; };
  auto gen = [](std::size_t device, std::size_t num_samples,
                data::Dataset& out) {
    out = quadratic_dataset(num_samples, kDim,
                            static_cast<double>(device % 7), 0.3,
                            900 + device);
  };
  data::Dataset pooled = quadratic_dataset(16, kDim, 3.0, 0.3, 424242);
  return std::make_shared<data::VirtualFederation>(num_devices, size_fn, gen,
                                                   std::move(pooled));
}

TEST(TrainerEvent, SampledFaultyCompressedRoundsAreBitIdenticalAcrossPools) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(12);
  TrainerOptions opts;
  opts.rounds = 8;
  opts.seed = 91;
  opts.devices_per_round = 4;  // m ≪ N sampling via Floyd's algorithm
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.2;
  cfg.straggler_prob = 0.3;
  cfg.straggler_slowdown = 2.5;
  cfg.uplink_loss_prob = 0.25;
  cfg.uplink_max_retries = 1;
  opts.faults = FaultModel(cfg);
  opts.comm.compressor = std::make_shared<comm::TopKCompressor>(0.5);
  opts.comm.error_feedback = true;
  opts.comm.byte_timing = true;
  opts.round_deadline = 50.0;
  const Trainer trainer(model, fed, opts);

  auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool::reset_global(threads);
    return trainer.run(gd_solver(model), "sampled");
  };
  const auto serial = run_with_pool(1);
  const auto two = run_with_pool(2);
  const auto full = run_with_pool(0);
  util::ThreadPool::reset_global(0);

  ASSERT_EQ(serial.rounds.size(), two.rounds.size());
  ASSERT_EQ(serial.rounds.size(), full.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash);
    EXPECT_EQ(serial.rounds[i].param_hash, full.rounds[i].param_hash);
    EXPECT_EQ(serial.rounds[i].dropped_devices, full.rounds[i].dropped_devices);
    EXPECT_EQ(serial.rounds[i].undelivered_updates,
              full.rounds[i].undelivered_updates);
    EXPECT_EQ(serial.rounds[i].uplink_bytes, full.rounds[i].uplink_bytes);
    EXPECT_DOUBLE_EQ(serial.rounds[i].realized_round_time,
                     full.rounds[i].realized_round_time);
  }
  EXPECT_EQ(serial.final_param_hash, two.final_param_hash);
  EXPECT_EQ(serial.final_param_hash, full.final_param_hash);
  // The fault machinery actually fired somewhere in the run.
  std::size_t fault_events = 0;
  for (const auto& r : serial.rounds) {
    fault_events += r.dropped_devices + r.straggler_devices +
                    r.undelivered_updates;
  }
  EXPECT_GT(fault_events, 0u);
}

TEST(TrainerEvent, SampledRunIsReproducibleAndSeedSensitive) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(10);
  TrainerOptions opts;
  opts.rounds = 5;
  opts.seed = 7;
  opts.devices_per_round = 3;
  const Trainer a(model, fed, opts);
  const auto t1 = a.run(gd_solver(model), "a");
  const auto t2 = a.run(gd_solver(model), "a");
  EXPECT_EQ(t1.final_param_hash, t2.final_param_hash);
  opts.seed = 8;  // different seed ⇒ different participant draw + init
  const Trainer b(model, fed, opts);
  const auto t3 = b.run(gd_solver(model), "b");
  EXPECT_NE(t1.final_param_hash, t3.final_param_hash);
}

TEST(TrainerEvent, FlatTreeAggregatorMatchesLegacyMeanHashes) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(9);
  TrainerOptions mean_opts;
  mean_opts.rounds = 6;
  mean_opts.seed = 19;
  mean_opts.devices_per_round = 5;
  FaultModelConfig cfg;
  cfg.dropout_prob = 0.25;  // survivor subsets exercise renormalization
  mean_opts.faults = FaultModel(cfg);
  TrainerOptions tree_opts = mean_opts;
  tree_opts.aggregator = make_tree_aggregator({.fanout = 0});
  const Trainer mean_trainer(model, fed, mean_opts);
  const Trainer tree_trainer(model, fed, tree_opts);
  const auto a = mean_trainer.run(gd_solver(model), "mean");
  const auto b = tree_trainer.run(gd_solver(model), "tree");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    // The single-level tree replays MeanAggregator's exact operation
    // sequence: hashes must be bitwise equal, not merely close.
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash) << "round " << i;
  }
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
}

TEST(TrainerEvent, LargeVirtualFleetTouchesOnlySampledParticipants) {
  constexpr std::size_t kFleet = 100000;
  constexpr std::size_t kSampled = 100;
  constexpr std::size_t kRounds = 3;
  auto model = std::make_shared<QuadraticModel>(kDim);
  auto fleet = virtual_quadratic_fleet(kFleet);
  TrainerOptions opts;
  opts.rounds = kRounds;
  opts.seed = 5;
  opts.devices_per_round = kSampled;
  // Global metrics are O(fleet); a sampled smoke run relies on hashes only.
  opts.eval_every = 1000;
  opts.eval_final = false;
  const Trainer trainer(model, fleet, opts);
  const auto trace = trainer.run(gd_solver(model, 2), "fleet");
  EXPECT_TRUE(trace.rounds.empty());  // no eval round fired
  EXPECT_EQ(trace.final_parameters.size(), kDim);
  EXPECT_NE(trace.final_param_hash, 0u);
  // The O(m·dim) contract, observed: every round materializes its m
  // participants' shards (once each, inside the solve) and nothing else —
  // no fleet-wide pass anywhere in the engine.
  EXPECT_EQ(fleet->materializations(), kSampled * kRounds);
}

TEST(TrainerEvent, MillionDeviceRoundCompletes) {
  constexpr std::size_t kFleet = 1000000;
  constexpr std::size_t kSampled = 1000;
  auto model = std::make_shared<QuadraticModel>(kDim);
  auto fleet = virtual_quadratic_fleet(kFleet);
  TrainerOptions opts;
  opts.rounds = 1;
  opts.seed = 3;
  opts.devices_per_round = kSampled;
  opts.eval_every = 2;  // never lands on round 1
  opts.eval_final = false;
  const Trainer trainer(model, fleet, opts);
  const auto trace = trainer.run(gd_solver(model, 2), "million");
  EXPECT_EQ(trace.final_parameters.size(), kDim);
  EXPECT_EQ(fleet->materializations(), kSampled);
}

TEST(TrainerEvent, VirtualAndInMemoryFederationsAgreeBitForBit) {
  // The federation seam must be invisible: a virtual fleet whose generator
  // reproduces the in-memory shards yields the identical trace.
  constexpr std::size_t kDevices = 6;
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = small_fed(kDevices);
  auto size_fn = [&fed](std::size_t device) {
    return fed.train[device].size();
  };
  auto gen = [&fed](std::size_t device, std::size_t /*num_samples*/,
                    data::Dataset& out) { out = fed.train[device]; };
  auto virt = std::make_shared<data::VirtualFederation>(
      kDevices, size_fn, gen, fed.pooled_test());
  TrainerOptions opts;
  opts.rounds = 4;
  opts.seed = 29;
  opts.devices_per_round = 3;
  const Trainer in_memory(model, fed, opts);
  const Trainer virtual_fleet(model, virt, opts);
  const auto a = in_memory.run(gd_solver(model), "mem");
  const auto b = virtual_fleet.run(gd_solver(model), "virt");
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash);
    EXPECT_DOUBLE_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
  }
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
}

}  // namespace
}  // namespace fedvr::fl
