#include "theory/smoothness.h"

#include <gtest/gtest.h>

#include "nn/models.h"
#include "testing/quadratic_model.h"
#include "util/error.h"

namespace fedvr::theory {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Rng;

TEST(Smoothness, QuadraticModelHasUnitCurvature) {
  // f_i(w) = 0.5||w - x_i||^2 has Hessian = I exactly: L = 1.
  const QuadraticModel model(6);
  const auto ds = quadratic_dataset(20, 6, 0.0, 1.0, 5);
  Rng rng(1);
  std::vector<double> w(6, 0.3);
  const double L = estimate_smoothness(model, ds, w, rng);
  EXPECT_NEAR(L, 1.0, 1e-5);
}

TEST(Smoothness, ScalesWithLossScaling) {
  // Estimating on 3x the data values does not change curvature of the
  // quadratic (Hessian is I regardless of x), so instead scale via L2:
  // logistic regression with l2 = c shifts the Hessian by +c I.
  const auto plain = nn::make_logistic_regression(5, 3, 0.0);
  const auto ridged = nn::make_logistic_regression(5, 3, 2.0);
  data::Dataset ds(tensor::Shape({5}), 40, 3);
  Rng data_rng(7);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (auto& v : ds.mutable_sample(i)) v = data_rng.normal();
    ds.set_label(i, static_cast<int>(data_rng.below(3)));
  }
  Rng rng(3);
  std::vector<double> w(plain->num_parameters(), 0.0);
  Rng r1(11), r2(11);
  const double L_plain = estimate_smoothness(*plain, ds, w, r1);
  const double L_ridged = estimate_smoothness(*ridged, ds, w, r2);
  EXPECT_NEAR(L_ridged - L_plain, 2.0, 0.05);
}

TEST(Smoothness, LogisticRegressionCurvatureIsBoundedByGram) {
  // CE-softmax Hessian satisfies H <= 0.5 * lambda_max(X^T X / n) (in the
  // 2-class case 0.25); use the loose 1.0x bound as a sanity envelope.
  const auto model = nn::make_logistic_regression(4, 2);
  data::Dataset ds(tensor::Shape({4}), 60, 2);
  Rng data_rng(13);
  double max_row_sq = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    double row_sq = 0.0;
    for (auto& v : ds.mutable_sample(i)) {
      v = data_rng.normal();
      row_sq += v * v;
    }
    max_row_sq = std::max(max_row_sq, row_sq);
    ds.set_label(i, static_cast<int>(data_rng.below(2)));
  }
  Rng rng(17);
  std::vector<double> w(model->num_parameters(), 0.0);
  const double L = estimate_smoothness(*model, ds, w, rng);
  EXPECT_GT(L, 0.0);
  EXPECT_LT(L, max_row_sq);  // generous upper envelope
}

TEST(Smoothness, DeterministicInRngState) {
  const QuadraticModel model(4);
  const auto ds = quadratic_dataset(10, 4, 1.0, 1.0, 19);
  std::vector<double> w(4, 0.0);
  Rng r1(23), r2(23);
  EXPECT_DOUBLE_EQ(estimate_smoothness(model, ds, w, r1),
                   estimate_smoothness(model, ds, w, r2));
}

TEST(Smoothness, SubsamplesLargeDatasets) {
  const QuadraticModel model(3);
  const auto ds = quadratic_dataset(2000, 3, 0.0, 1.0, 29);
  SmoothnessOptions opt;
  opt.max_samples = 50;  // force the subsampling path
  Rng rng(31);
  std::vector<double> w(3, 0.0);
  EXPECT_NEAR(estimate_smoothness(model, ds, w, rng, opt), 1.0, 1e-5);
}

}  // namespace
}  // namespace fedvr::theory
