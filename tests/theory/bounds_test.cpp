#include "theory/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace fedvr::theory {
namespace {

using fedvr::util::Error;

ProblemConstants fig1_constants() {
  // Fig. 1's setting: L = 1, lambda = 0.5.
  return ProblemConstants{.L = 1.0, .lambda = 0.5, .sigma_bar_sq = 0.2};
}

TEST(Bounds, MuTilde) {
  EXPECT_DOUBLE_EQ(mu_tilde(1.5, 0.5), 1.0);
  EXPECT_LT(mu_tilde(0.3, 0.5), 0.0);
}

TEST(Bounds, TauLowerMatchesHandComputedValue) {
  // beta=5, L=1, mu=1.5, lambda=0.5 (mu_tilde=1), theta=0.5:
  // 3(25 + 2.25) / (0.25 * 1 * 1 * 2) = 81.75 / 0.5 = 163.5
  const auto pc = fig1_constants();
  EXPECT_NEAR(tau_lower_bound(5.0, 1.5, 0.5, pc), 163.5, 1e-10);
}

TEST(Bounds, TauLowerRejectsInvalidInputs) {
  const auto pc = fig1_constants();
  EXPECT_THROW((void)tau_lower_bound(3.0, 1.5, 0.5, pc), Error);   // beta<=3
  EXPECT_THROW((void)tau_lower_bound(5.0, 0.4, 0.5, pc), Error);   // mu<=lambda
  EXPECT_THROW((void)tau_lower_bound(5.0, 1.5, 0.0, pc), Error);   // theta=0
  EXPECT_THROW((void)tau_lower_bound(5.0, 1.5, 1.5, pc), Error);   // theta>1
}

TEST(Bounds, TauLowerScalesAsInverseThetaSquared) {
  // Remark 1(2): tau = Omega(1/theta^2).
  const auto pc = fig1_constants();
  const double t1 = tau_lower_bound(6.0, 1.5, 0.2, pc);
  const double t2 = tau_lower_bound(6.0, 1.5, 0.1, pc);
  EXPECT_NEAR(t2 / t1, 4.0, 1e-10);
}

TEST(Bounds, TauLowerGrowsWithMuAsymptotically) {
  // Remark 1(4): the lower bound is Omega(mu). For mu >> lambda it grows
  // linearly (mu^2 / mu_tilde ~ mu); near mu_tilde -> 0+ it also blows up,
  // so growth is asymptotic, not global.
  const auto pc = fig1_constants();
  const double at_20 = tau_lower_bound(8.0, 20.0, 0.5, pc);
  const double at_200 = tau_lower_bound(8.0, 200.0, 0.5, pc);
  const double at_2000 = tau_lower_bound(8.0, 2000.0, 0.5, pc);
  EXPECT_GT(at_200, at_20);
  EXPECT_GT(at_2000, at_200);
  EXPECT_NEAR(at_2000 / at_200, 10.0, 1.0);  // ~linear in mu
}

TEST(Bounds, TauUpperSarahQuadraticInBeta) {
  EXPECT_DOUBLE_EQ(tau_upper_sarah(5.0), (125.0 - 20.0) / 8.0);
  EXPECT_DOUBLE_EQ(tau_upper_sarah(4.0), 8.0);
}

TEST(Bounds, SvrgAminSatisfiesYoungConditionWithEquality) {
  // a_min solves a - 4 = 4 sqrt(a (tau+1)).
  for (double tau : {0.0, 1.0, 5.0, 50.0}) {
    const double a = svrg_a_min(tau);
    EXPECT_NEAR(a - 4.0, 4.0 * std::sqrt(a * (tau + 1.0)), 1e-8)
        << "tau = " << tau;
    EXPECT_GE(a, 4.0);
  }
}

TEST(Bounds, TauUpperSvrgFeasibleSetIsConsistent) {
  // The returned tau satisfies the condition; tau+1 must not.
  const double beta = 30.0;
  const auto tau_opt = tau_upper_svrg(beta);
  ASSERT_TRUE(tau_opt.has_value());
  const double tau = *tau_opt;
  const double budget = 5.0 * beta * beta - 4.0 * beta;
  EXPECT_LE(tau, budget / (8.0 * svrg_a_min(tau)) - 2.0);
  EXPECT_GT(tau + 1.0, budget / (8.0 * svrg_a_min(tau + 1.0)) - 2.0);
}

TEST(Bounds, SvrgUpperBoundIsStricterThanSarah) {
  // Remark 1(5): SVRG requires a larger beta_min; equivalently its tau
  // budget at a fixed beta is far smaller than SARAH's.
  for (double beta : {10.0, 25.0, 60.0}) {
    const auto svrg = tau_upper_svrg(beta);
    ASSERT_TRUE(svrg.has_value());
    EXPECT_LT(*svrg, tau_upper_sarah(beta)) << "beta = " << beta;
  }
}

TEST(Bounds, TauUpperSvrgInfeasibleForTinyBeta) {
  // With beta barely above zero there is no nonnegative feasible tau.
  EXPECT_FALSE(tau_upper_svrg(1.0).has_value());
}

TEST(Bounds, ThetaSquaredSarahMatchesEq22) {
  const auto pc = fig1_constants();
  const double beta = 6.0, mu = 1.5;
  const double mt = 1.0;
  const double expected = 24.0 * (36.0 + 2.25) /
                          (mt * 1.0 * (5 * 36.0 - 24.0) * 3.0);
  EXPECT_NEAR(theta_squared_sarah(beta, mu, pc), expected, 1e-12);
}

TEST(Bounds, ThetaSquaredDecreasesInBeta) {
  const auto pc = fig1_constants();
  double prev = theta_squared_sarah(3.5, 1.0, pc);
  for (double beta = 4.0; beta < 50.0; beta += 2.0) {
    const double cur = theta_squared_sarah(beta, 1.0, pc);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Bounds, BetaMinSolvesEq15) {
  const auto pc = fig1_constants();
  const double theta = 0.3, mu = 1.5;
  const auto beta = beta_min_sarah(theta, mu, pc);
  ASSERT_TRUE(beta.has_value());
  // At beta_min the lower and upper bounds coincide: theta^2(beta) = theta^2.
  EXPECT_NEAR(theta_squared_sarah(*beta, mu, pc), theta * theta, 1e-6);
  EXPECT_NEAR(tau_lower_bound(*beta, mu, theta, pc), tau_upper_sarah(*beta),
              1e-3 * tau_upper_sarah(*beta));
}

TEST(Bounds, SmallerThetaNeedsLargerBetaMin) {
  const auto pc = fig1_constants();
  const auto loose = beta_min_sarah(0.5, 1.5, pc);
  const auto tight = beta_min_sarah(0.1, 1.5, pc);
  ASSERT_TRUE(loose && tight);
  EXPECT_GT(*tight, *loose);
}

TEST(Bounds, FederatedFactorPositiveForGoodParameters) {
  const auto pc = fig1_constants();
  // Large mu, small theta: all negative terms are tamed.
  EXPECT_GT(federated_factor(0.01, 50.0, pc), 0.0);
}

TEST(Bounds, FederatedFactorNegativeWhenThetaTooLarge) {
  const auto pc = fig1_constants();
  // Remark 2(1): theta must be below (2(1+sigma^2))^{-1/2} ~ 0.645.
  EXPECT_LT(federated_factor(0.9, 50.0, pc), 0.0);
}

TEST(Bounds, FederatedFactorShrinksWithHeterogeneity) {
  // Remark 2 / Fig. 1: larger sigma-bar^2 decreases Theta.
  ProblemConstants low = fig1_constants();
  ProblemConstants high = fig1_constants();
  high.sigma_bar_sq = 0.8;
  EXPECT_GT(federated_factor(0.05, 30.0, low),
            federated_factor(0.05, 30.0, high));
}

TEST(Bounds, FederatedFactorRequiresMuAboveLambda) {
  const auto pc = fig1_constants();
  EXPECT_THROW((void)federated_factor(0.1, 0.0, pc), Error);
  EXPECT_THROW((void)federated_factor(0.1, 0.4, pc), Error);
}

TEST(Bounds, GlobalRoundsScaleInverselyWithThetaAndEpsilon) {
  // Corollary 1: T >= Delta / (Theta epsilon).
  EXPECT_DOUBLE_EQ(global_rounds_needed(10.0, 0.5, 0.01), 2000.0);
  EXPECT_THROW((void)global_rounds_needed(10.0, -0.5, 0.01), Error);
  EXPECT_THROW((void)global_rounds_needed(10.0, 0.5, 0.0), Error);
}

}  // namespace
}  // namespace fedvr::theory
