#include "theory/heterogeneity.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/models.h"
#include "testing/quadratic_model.h"

namespace fedvr::theory {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Rng;

constexpr std::size_t kDim = 4;

data::FederatedDataset quad_fed(double c0, double c1) {
  data::FederatedDataset fed;
  fed.train.push_back(quadratic_dataset(20, kDim, c0, 0.01, 1));
  fed.train.push_back(quadratic_dataset(20, kDim, c1, 0.01, 2));
  fed.test.push_back(quadratic_dataset(5, kDim, c0, 0.01, 3));
  fed.test.push_back(quadratic_dataset(5, kDim, c1, 0.01, 4));
  return fed;
}

TEST(Heterogeneity, IdenticalDevicesHaveNearZeroSigma) {
  // Same distribution on both devices: gradients agree, sigma ~ 0 (up to
  // the tiny 0.01 sampling spread).
  const QuadraticModel model(kDim);
  const auto fed = quad_fed(1.0, 1.0);
  Rng rng(5);
  const auto est = estimate_heterogeneity(model, fed, rng);
  ASSERT_EQ(est.sigma_n.size(), 2u);
  EXPECT_LT(est.sigma_bar_sq, 0.01);
}

TEST(Heterogeneity, DivergentDevicesHaveLargerSigma) {
  const QuadraticModel model(kDim);
  Rng r1(5), r2(5);
  const auto same = estimate_heterogeneity(model, quad_fed(1.0, 1.0), r1);
  const auto split = estimate_heterogeneity(model, quad_fed(-3.0, 3.0), r2);
  EXPECT_GT(split.sigma_bar_sq, 10.0 * same.sigma_bar_sq);
  EXPECT_GT(split.sigma_n[0], 0.1);
  EXPECT_GT(split.sigma_n[1], 0.1);
}

TEST(Heterogeneity, QuadraticSigmaMatchesAnalyticRatio) {
  // Two equal-size devices centered at +c/-c: grad F_n(w) = w -/+ c*1,
  // grad F̄(w) = w. At probe w, ratio_n = ||c*1|| / ||w||; the estimator
  // takes the max over probes, so it must be >= the ratio at the
  // initialization probe and finite.
  const QuadraticModel model(kDim);
  const auto fed = quad_fed(-2.0, 2.0);
  Rng rng(7);
  HeterogeneityOptions opt;
  opt.probes = 6;
  const auto est = estimate_heterogeneity(model, fed, rng, opt);
  // Device means are symmetric: the two sigmas are nearly equal.
  EXPECT_NEAR(est.sigma_n[0], est.sigma_n[1], 0.2 * est.sigma_n[0]);
  EXPECT_TRUE(std::isfinite(est.sigma_bar_sq));
}

TEST(Heterogeneity, SigmaBarIsWeightedMeanOfSquares) {
  const QuadraticModel model(kDim);
  data::FederatedDataset fed;
  fed.train.push_back(quadratic_dataset(30, kDim, -1.0, 0.01, 1));
  fed.train.push_back(quadratic_dataset(10, kDim, 3.0, 0.01, 2));
  fed.test.push_back(quadratic_dataset(5, kDim, 0.0, 0.01, 3));
  fed.test.push_back(quadratic_dataset(5, kDim, 0.0, 0.01, 4));
  Rng rng(9);
  const auto est = estimate_heterogeneity(model, fed, rng);
  const double expected = 0.75 * est.sigma_n[0] * est.sigma_n[0] +
                          0.25 * est.sigma_n[1] * est.sigma_n[1];
  EXPECT_NEAR(est.sigma_bar_sq, expected, 1e-12);
}

TEST(Heterogeneity, SyntheticFederationBeatsIidSplit) {
  // An IID split of one device's data must measure far less divergence
  // than the Synthetic federation (whose devices draw their own models).
  data::SyntheticConfig cfg;
  cfg.num_devices = 6;
  cfg.min_samples = 40;
  cfg.max_samples = 80;
  cfg.seed = 11;
  const auto heterogeneous = data::make_synthetic(cfg);

  // IID federation: slices of a single device's local dataset.
  const auto pool = data::make_synthetic_device(cfg, 0, 240);
  data::FederatedDataset iid;
  for (std::size_t k = 0; k < 6; ++k) {
    std::vector<std::size_t> idx;
    for (std::size_t i = k; i < pool.size(); i += 6) idx.push_back(i);
    iid.train.push_back(pool.subset(idx));
    iid.test.push_back(pool.subset(std::vector<std::size_t>{k}));
  }

  const auto model = nn::make_logistic_regression(60, 10);
  Rng r1(13), r2(13);
  const auto low = estimate_heterogeneity(*model, iid, r1);
  const auto high = estimate_heterogeneity(*model, heterogeneous, r2);
  EXPECT_GT(high.sigma_bar_sq, 2.0 * low.sigma_bar_sq);
}

TEST(Heterogeneity, DeterministicInRngState) {
  const QuadraticModel model(kDim);
  const auto fed = quad_fed(0.0, 1.0);
  Rng r1(17), r2(17);
  const auto a = estimate_heterogeneity(model, fed, r1);
  const auto b = estimate_heterogeneity(model, fed, r2);
  EXPECT_EQ(a.sigma_n, b.sigma_n);
  EXPECT_DOUBLE_EQ(a.sigma_bar_sq, b.sigma_bar_sq);
}

}  // namespace
}  // namespace fedvr::theory
