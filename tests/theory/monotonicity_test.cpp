// Parameterized monotonicity sweeps over the Lemma-1 / Theorem-1 formulas:
// the qualitative Remarks hold across a grid of problem constants, not
// just at single points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "theory/bounds.h"

namespace fedvr::theory {
namespace {

using Constants = std::tuple<double, double, double>;  // L, lambda, sigma2

class TheoryMonotonicity : public ::testing::TestWithParam<Constants> {
 protected:
  ProblemConstants pc() const {
    const auto [L, lambda, sigma2] = GetParam();
    return ProblemConstants{.L = L,
                            .lambda = lambda,
                            .sigma_bar_sq = sigma2};
  }
};

TEST_P(TheoryMonotonicity, TauLowerDecreasesInTheta) {
  // Remark 1(2): smaller theta demands more local iterations.
  const auto constants = pc();
  const double mu = 4.0 * constants.lambda + 1.0;
  double prev = tau_lower_bound(8.0, mu, 0.05, constants);
  for (double theta : {0.1, 0.2, 0.4, 0.8}) {
    const double cur = tau_lower_bound(8.0, mu, theta, constants);
    EXPECT_LT(cur, prev) << "theta = " << theta;
    prev = cur;
  }
}

TEST_P(TheoryMonotonicity, TauLowerDecreasesInBetaLargeBeta) {
  // For beta well above 3 the lower bound behaves like beta/theta^2
  // divided by (beta - 3) * ... — decreasing then flattening; check the
  // decreasing regime just above 3.
  const auto constants = pc();
  const double mu = 4.0 * constants.lambda + 1.0;
  EXPECT_GT(tau_lower_bound(3.5, mu, 0.3, constants),
            tau_lower_bound(6.0, mu, 0.3, constants));
}

TEST_P(TheoryMonotonicity, SarahUpperGrowsQuadratically) {
  EXPECT_NEAR(tau_upper_sarah(20.0) / tau_upper_sarah(10.0), 4.0, 0.3);
}

TEST_P(TheoryMonotonicity, SvrgBudgetBelowSarahEverywhere) {
  for (double beta : {8.0, 15.0, 40.0, 100.0}) {
    const auto svrg = tau_upper_svrg(beta);
    if (svrg) {
      EXPECT_LT(*svrg, tau_upper_sarah(beta)) << "beta = " << beta;
    }
  }
}

TEST_P(TheoryMonotonicity, FederatedFactorDecreasesInTheta) {
  const auto constants = pc();
  const double mu = 30.0 * (constants.lambda + constants.L);
  double prev = federated_factor(0.01, mu, constants);
  for (double theta : {0.05, 0.1, 0.2}) {
    const double cur = federated_factor(theta, mu, constants);
    EXPECT_LT(cur, prev) << "theta = " << theta;
    prev = cur;
  }
}

TEST_P(TheoryMonotonicity, FederatedFactorHasInteriorMuOptimum) {
  // Remark 2(2): mu must be large enough for Theta > 0 but not so large
  // that Theta ~ 1/mu collapses. Scan mu and require a rise-then-fall
  // shape once positive.
  const auto constants = pc();
  double best = -1e300;
  double best_mu = 0.0;
  const double mu_lo = 2.0 * (constants.lambda + constants.L);
  for (double mu = mu_lo; mu < 2000.0 * mu_lo; mu *= 1.3) {
    const double theta_val = 0.05;
    const double f = federated_factor(theta_val, mu, constants);
    if (f > best) {
      best = f;
      best_mu = mu;
    }
  }
  ASSERT_GT(best, 0.0);
  // The optimum is interior: far larger mu gives a strictly smaller Theta.
  EXPECT_LT(federated_factor(0.05, 5000.0 * best_mu, constants), best);
}

INSTANTIATE_TEST_SUITE_P(
    ConstantGrid, TheoryMonotonicity,
    ::testing::Values(Constants{1.0, 0.5, 0.2},   // Fig. 1's setting
                      Constants{1.0, 0.5, 0.8},   // high heterogeneity
                      Constants{5.0, 1.0, 0.5},   // rougher loss
                      Constants{0.5, 0.1, 0.1})); // smooth, mild

}  // namespace
}  // namespace fedvr::theory
