#include "theory/param_opt.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace fedvr::theory {
namespace {

ProblemConstants fig1_constants(double sigma_sq = 0.2) {
  return ProblemConstants{.L = 1.0, .lambda = 0.5, .sigma_bar_sq = sigma_sq};
}

TEST(TrainingTimeObjective, InfeasiblePointsReturnNullopt) {
  const auto pc = fig1_constants();
  EXPECT_FALSE(training_time_objective(2.0, 5.0, 0.1, pc).has_value());
  EXPECT_FALSE(training_time_objective(10.0, 0.4, 0.1, pc).has_value());
  // mu barely above lambda makes theta^2 blow up (>1): infeasible.
  EXPECT_FALSE(
      training_time_objective(3.2, 0.5 + 1e-9, 0.1, pc).has_value());
}

TEST(TrainingTimeObjective, FeasiblePointMatchesManualFormula) {
  const auto pc = fig1_constants();
  const double beta = 200.0, mu = 50.0, gamma = 0.1;
  const auto obj = training_time_objective(beta, mu, gamma, pc);
  ASSERT_TRUE(obj.has_value());
  const double theta = std::sqrt(theta_squared_sarah(beta, mu, pc));
  const double Theta = federated_factor(theta, mu, pc);
  const double tau = tau_upper_sarah(beta);
  EXPECT_NEAR(*obj, (1.0 + gamma * tau) / Theta, 1e-12);
}

TEST(OptimizeParameters, FindsAFeasibleOptimum) {
  const auto pc = fig1_constants();
  const auto p = optimize_parameters(0.1, pc);
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(p->beta, 3.0);
  EXPECT_GT(p->mu, pc.lambda);
  EXPECT_GT(p->Theta, 0.0);
  EXPECT_GT(p->theta, 0.0);
  EXPECT_LT(p->theta, 1.0);
  EXPECT_NEAR(p->tau, tau_upper_sarah(p->beta), 1e-9);
  // The reported objective is consistent.
  const auto obj = training_time_objective(p->beta, p->mu, 0.1, pc);
  ASSERT_TRUE(obj.has_value());
  EXPECT_NEAR(p->objective, *obj, 1e-9);
}

TEST(OptimizeParameters, OptimumBeatsRandomFeasibleProbes) {
  const auto pc = fig1_constants();
  const double gamma = 0.05;
  const auto p = optimize_parameters(gamma, pc);
  ASSERT_TRUE(p.has_value());
  for (double beta : {4.0, 8.0, 16.0, 40.0, 120.0}) {
    for (double mu : {0.7, 1.5, 4.0, 20.0, 80.0}) {
      const auto obj = training_time_objective(beta, mu, gamma, pc);
      if (obj) {
        EXPECT_LE(p->objective, *obj * (1.0 + 1e-9))
            << "beaten at beta=" << beta << " mu=" << mu;
      }
    }
  }
}

TEST(OptimizeParameters, Fig1Shape_SmallGammaPrefersManyLocalIterations) {
  // Fig. 1: when communication dominates (gamma small), optimal beta (and
  // so tau) is much larger than when computation dominates.
  const auto pc = fig1_constants();
  const auto cheap_compute = optimize_parameters(1e-4, pc);
  const auto costly_compute = optimize_parameters(1.0, pc);
  ASSERT_TRUE(cheap_compute && costly_compute);
  EXPECT_GT(cheap_compute->beta, costly_compute->beta);
  EXPECT_GT(cheap_compute->tau, 10.0 * costly_compute->tau);
}

TEST(OptimizeParameters, Fig1Shape_GammaGrowthRaisesMuAndTheta) {
  const auto pc = fig1_constants();
  const auto low = optimize_parameters(1e-3, pc);
  const auto high = optimize_parameters(0.5, pc);
  ASSERT_TRUE(low && high);
  EXPECT_GT(high->mu, low->mu);
  EXPECT_GT(high->theta, low->theta);
}

TEST(OptimizeParameters, Fig1Shape_HeterogeneityRaisesMuAndBetaLowersTheta) {
  // "large sigma-bar^2 increases the optimal mu and beta, but decreases
  // theta and Theta" (§4.3).
  const double gamma = 0.01;
  const auto low = optimize_parameters(gamma, fig1_constants(0.2));
  const auto high = optimize_parameters(gamma, fig1_constants(0.8));
  ASSERT_TRUE(low && high);
  EXPECT_GT(high->mu, low->mu);
  EXPECT_GE(high->beta, 0.9 * low->beta);  // beta rises (allow grid noise)
  EXPECT_LT(high->theta, low->theta);
  EXPECT_LT(high->Theta, low->Theta);
}

TEST(SweepGamma, ReturnsOneEntryPerGammaInOrder) {
  const auto pc = fig1_constants();
  const std::array gammas = {1e-3, 1e-2, 1e-1};
  const auto sweep = sweep_gamma(gammas, pc);
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sweep[i].first, gammas[i]);
    EXPECT_GT(sweep[i].second.Theta, 0.0);
  }
  // Objective (normalized training time) grows with gamma.
  EXPECT_LT(sweep[0].second.objective, sweep[2].second.objective);
}

}  // namespace
}  // namespace fedvr::theory
