#include "core/heterogeneous.h"

#include "core/fedproxvr.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/models.h"
#include "util/error.h"

namespace fedvr::core {
namespace {

using fedvr::util::Error;

data::FederatedDataset tiny_fed(std::size_t devices = 4) {
  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.dim = 10;
  cfg.num_classes = 3;
  cfg.min_samples = 30;
  cfg.max_samples = 60;
  cfg.seed = 7;
  return data::make_synthetic(cfg);
}

HyperParams hp_base() {
  HyperParams hp;
  hp.beta = 5.0;
  hp.tau = 8;
  hp.mu = 0.1;
  hp.batch_size = 4;
  return hp;
}

TEST(HeterogeneousSolvers, PerDeviceEtaFollowsPerDeviceL) {
  const auto model = nn::make_logistic_regression(10, 3);
  const std::vector<double> L = {1.0, 2.0, 4.0};
  const auto solvers = make_heterogeneous_solvers(
      model, fedproxvr_svrg(hp_base()), /*beta=*/5.0, L);
  ASSERT_EQ(solvers.size(), 3u);
  EXPECT_DOUBLE_EQ(solvers[0].options().eta, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(solvers[1].options().eta, 1.0 / 10.0);
  EXPECT_DOUBLE_EQ(solvers[2].options().eta, 1.0 / 20.0);
  for (const auto& s : solvers) {
    EXPECT_EQ(s.options().estimator, opt::Estimator::kSvrg);
    EXPECT_EQ(s.options().tau, 8u);
  }
}

TEST(HeterogeneousSolvers, RejectsBadInputs) {
  const auto model = nn::make_logistic_regression(10, 3);
  const std::vector<double> bad_L = {1.0, -2.0};
  EXPECT_THROW((void)make_heterogeneous_solvers(
                   model, fedavg(hp_base()), 5.0, bad_L),
               Error);
  EXPECT_THROW((void)make_heterogeneous_solvers(
                   model, fedavg(hp_base()), 0.0, std::vector<double>{1.0}),
               Error);
}

TEST(HeterogeneousRun, UniformConstantsMatchHomogeneousRun) {
  const auto fed = tiny_fed();
  const auto model = nn::make_logistic_regression(10, 3);
  const auto hp = hp_base();
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 5;
  run_cfg.seed = 13;
  const auto homogeneous =
      run_federated(model, fed, fedproxvr_sarah(hp), run_cfg);
  const std::vector<double> uniform_L(fed.num_devices(), hp.smoothness_L);
  const auto heterogeneous = run_federated_heterogeneous(
      model, fed, fedproxvr_sarah(hp), hp.beta, uniform_L, run_cfg);
  ASSERT_EQ(homogeneous.rounds.size(), heterogeneous.rounds.size());
  for (std::size_t i = 0; i < homogeneous.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(homogeneous.rounds[i].train_loss,
                     heterogeneous.rounds[i].train_loss);
  }
}

TEST(HeterogeneousRun, MismatchedDeviceCountThrows) {
  const auto fed = tiny_fed(4);
  const auto model = nn::make_logistic_regression(10, 3);
  const std::vector<double> three_L = {1.0, 1.0, 1.0};
  EXPECT_THROW((void)run_federated_heterogeneous(
                   model, fed, fedavg(hp_base()), 5.0, three_L, {}),
               Error);
}

TEST(HeterogeneousRun, DistinctConstantsStillConverge) {
  const auto fed = tiny_fed();
  const auto model = nn::make_logistic_regression(10, 3);
  std::vector<double> L_n;
  for (std::size_t n = 0; n < fed.num_devices(); ++n) {
    L_n.push_back(1.0 + static_cast<double>(n));  // strongly heterogeneous
  }
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 15;
  run_cfg.seed = 17;
  const auto trace = run_federated_heterogeneous(
      model, fed, fedproxvr_svrg(hp_base()), 5.0, L_n, run_cfg);
  EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss);
}

TEST(PlanHyperparams, ProducesFeasibleTheoryBackedConfig) {
  const theory::ProblemConstants pc{.L = 1.0,
                                    .lambda = 0.5,
                                    .sigma_bar_sq = 0.2};
  const auto hp = plan_hyperparams(0.01, pc, 16);
  EXPECT_GT(hp.beta, 3.0);
  EXPECT_GT(hp.mu, pc.lambda);
  EXPECT_EQ(hp.batch_size, 16u);
  EXPECT_DOUBLE_EQ(hp.smoothness_L, 1.0);
  // tau matches eq. (16) at the planned beta (within integer rounding).
  EXPECT_NEAR(static_cast<double>(hp.tau),
              theory::tau_upper_sarah(hp.beta), 1.0);
  // The planned config must be runnable as-is.
  const auto fed = tiny_fed();
  const auto model = nn::make_logistic_regression(10, 3);
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 2;
  EXPECT_NO_THROW(
      (void)run_federated(model, fed, fedproxvr_sarah(hp), run_cfg));
}

}  // namespace
}  // namespace fedvr::core
