// ProxSkip-VR: the shared skip coin, per-iteration byte accounting,
// convergence to the global quadratic optimum, and bit-identity across
// thread-pool sizes with compression, error feedback, and faults on.
#include "core/proxskip.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/message.h"
#include "tensor/vecops.h"
#include "testing/quadratic_model.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedvr::core {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Error;

constexpr std::size_t kDim = 4;

data::FederatedDataset make_fed(std::size_t devices = 3) {
  data::FederatedDataset fed;
  for (std::size_t d = 0; d < devices; ++d) {
    fed.train.push_back(quadratic_dataset(8 + d, kDim,
                                          static_cast<double>(d), 0.2,
                                          10 + d));
    fed.test.push_back(quadratic_dataset(4, kDim, static_cast<double>(d),
                                         0.2, 40 + d));
  }
  return fed;
}

// The global objective's unique minimizer: the pooled sample mean.
std::vector<double> pooled_mean(const data::FederatedDataset& fed) {
  std::vector<double> mean(kDim, 0.0);
  std::size_t total = 0;
  for (const auto& ds : fed.train) {
    for (std::size_t i = 0; i < ds.size(); ++i) {
      tensor::axpy(1.0, ds.sample(i), mean);
    }
    total += ds.size();
  }
  tensor::scal(1.0 / static_cast<double>(total), mean);
  return mean;
}

TEST(ProxSkipVR, ValidatesOptions) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed();
  ProxSkipVROptions bad;
  bad.skip_prob = 0.0;
  EXPECT_THROW((void)run_proxskip_vr(model, fed, bad), Error);
  bad = ProxSkipVROptions{};
  bad.step_size = -1.0;
  EXPECT_THROW((void)run_proxskip_vr(model, fed, bad), Error);
  // Corruption faults need the trainer's defense layer; reject them here.
  bad = ProxSkipVROptions{};
  fl::FaultModelConfig cfg;
  cfg.corrupt_prob = 0.5;
  bad.faults = fl::FaultModel(cfg);
  EXPECT_THROW((void)run_proxskip_vr(model, fed, bad), Error);
}

TEST(ProxSkipVR, ConvergesToGlobalOptimumAndMatchesCoinStream) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed();
  ProxSkipVROptions opts;
  opts.iterations = 300;
  opts.step_size = 0.3;
  opts.skip_prob = 0.2;
  opts.batch_size = 4;
  opts.eval_every = 1;
  opts.eval_initial = true;
  const auto trace = run_proxskip_vr(model, fed, opts, "ps");
  ASSERT_EQ(trace.rounds.size(), opts.iterations + 1);

  // Converges to the pooled-mean optimum despite skipping ~80% of rounds.
  const auto opt = pooled_mean(fed);
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_NEAR(trace.final_parameters[j], opt[j], 1e-3) << j;
  }
  EXPECT_LT(trace.back().train_loss, trace.rounds[0].train_loss);

  // Byte counters move exactly on the coin's heads: replay the documented
  // stream — fork(seed, 0, t, kComm) — and check the downlink ledger.
  const std::size_t msg =
      comm::wire_bytes(comm::DType::kFloat64, kDim, kDim, false);
  std::size_t heads = 0;
  for (std::size_t t = 1; t <= opts.iterations; ++t) {
    util::Rng coin = util::fork(opts.seed, 0, t, util::stream::kComm);
    if (coin.uniform() < opts.skip_prob) ++heads;
    const auto& m = trace.rounds[t];  // eval_every=1: entry per iteration
    EXPECT_EQ(m.downlink_bytes, heads * fed.num_devices() * msg) << t;
    EXPECT_EQ(m.uplink_bytes, heads * fed.num_devices() * msg) << t;
  }
  EXPECT_GT(heads, 0u);
  EXPECT_LT(heads, opts.iterations);  // it actually skipped rounds
}

TEST(ProxSkipVR, PEqualsOneCommunicatesEveryIteration) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed(2);
  ProxSkipVROptions opts;
  opts.iterations = 10;
  opts.skip_prob = 1.0;
  opts.step_size = 0.3;
  opts.eval_every = 1;
  const auto trace = run_proxskip_vr(model, fed, opts, "ps1");
  const std::size_t msg =
      comm::wire_bytes(comm::DType::kFloat64, kDim, kDim, false);
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const std::size_t t = trace.rounds[i].round;
    EXPECT_EQ(trace.rounds[i].downlink_bytes, t * 2u * msg);
    // Every iteration pays d_com + d_cmp (tau = 1).
    EXPECT_NEAR(trace.rounds[i].model_time,
                static_cast<double>(t) * opts.timing.round_time(1), 1e-12);
  }
}

TEST(ProxSkipVR, BitIdenticalAcrossPoolSizesWithCompressionAndFaults) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed(4);
  ProxSkipVROptions opts;
  opts.iterations = 40;
  opts.step_size = 0.2;
  opts.skip_prob = 0.3;
  opts.eval_every = 5;
  opts.comm.compressor = std::make_shared<comm::TopKCompressor>(0.5);
  opts.comm.error_feedback = true;
  opts.comm.uplink_dtype = comm::DType::kInt8Block;
  opts.comm.byte_timing = true;
  fl::FaultModelConfig cfg;
  cfg.dropout_prob = 0.1;
  cfg.straggler_prob = 0.2;
  cfg.uplink_loss_prob = 0.2;
  opts.faults = fl::FaultModel(cfg);

  const auto run_with_pool = [&](std::size_t threads) {
    util::ThreadPool::reset_global(threads);
    return run_proxskip_vr(model, fed, opts, "ps-pool");
  };
  const auto serial = run_with_pool(1);
  const auto two = run_with_pool(2);
  const auto many = run_with_pool(0);
  util::ThreadPool::reset_global();

  ASSERT_EQ(serial.rounds.size(), many.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i].param_hash, two.rounds[i].param_hash) << i;
    EXPECT_EQ(serial.rounds[i].param_hash, many.rounds[i].param_hash) << i;
    EXPECT_EQ(serial.rounds[i].uplink_bytes, many.rounds[i].uplink_bytes);
    EXPECT_EQ(serial.rounds[i].model_time, many.rounds[i].model_time) << i;
  }
  EXPECT_EQ(serial.final_param_hash, many.final_param_hash);
}

TEST(ProxSkipVR, SerialAndParallelFlagAgree) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed(3);
  ProxSkipVROptions opts;
  opts.iterations = 20;
  opts.skip_prob = 0.4;
  opts.eval_every = 4;
  auto serial_opts = opts;
  serial_opts.parallel = false;
  const auto a = run_proxskip_vr(model, fed, opts, "p");
  const auto b = run_proxskip_vr(model, fed, serial_opts, "p");
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
}

TEST(ProxSkipVR, TargetAccuracyCanStopAtRoundZero) {
  // Regression (shared with the trainer): a starting model that already
  // meets target_accuracy must end the run at the round-0 evaluation, not
  // after one paid iteration.
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = make_fed(2);
  ProxSkipVROptions opts;
  opts.iterations = 100;
  opts.eval_every = 1;
  opts.eval_initial = true;
  opts.target_accuracy = 0.0;  // any model qualifies, w̄^(0) included
  const std::vector<double> w0(kDim, 0.5);
  const auto trace = run_proxskip_vr(model, fed, opts, "stop0", w0);
  ASSERT_EQ(trace.rounds.size(), 1u);
  EXPECT_EQ(trace.rounds.front().round, 0u);
  // No iteration ran: the final model is the (weighted average of the)
  // starting point — equal to w0 up to the D_n/D summation rounding.
  ASSERT_EQ(trace.final_parameters.size(), w0.size());
  for (std::size_t j = 0; j < w0.size(); ++j) {
    EXPECT_NEAR(trace.final_parameters[j], w0[j], 1e-15);
  }
}

}  // namespace
}  // namespace fedvr::core
