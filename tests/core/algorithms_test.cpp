#include "core/algorithms.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace fedvr::core {
namespace {

using fedvr::util::Error;

HyperParams hp_example() {
  HyperParams hp;
  hp.beta = 5.0;
  hp.smoothness_L = 2.0;
  hp.tau = 20;
  hp.mu = 0.1;
  hp.batch_size = 32;
  return hp;
}

TEST(HyperParams, EtaIsOneOverBetaL) {
  EXPECT_DOUBLE_EQ(hp_example().eta(), 1.0 / 10.0);
}

TEST(HyperParams, EtaRejectsNonPositiveInputs) {
  auto hp = hp_example();
  hp.beta = 0.0;
  EXPECT_THROW((void)hp.eta(), Error);
  hp = hp_example();
  hp.smoothness_L = -1.0;
  EXPECT_THROW((void)hp.eta(), Error);
}

TEST(AlgorithmSpecs, FedAvgIsSgdWithoutProx) {
  const auto spec = fedavg(hp_example());
  EXPECT_EQ(spec.name, "FedAvg");
  EXPECT_EQ(spec.options.estimator, opt::Estimator::kSgd);
  EXPECT_DOUBLE_EQ(spec.options.mu, 0.0);
  EXPECT_DOUBLE_EQ(spec.options.eta, 0.1);
  EXPECT_EQ(spec.options.tau, 20u);
  EXPECT_EQ(spec.options.batch_size, 32u);
}

TEST(AlgorithmSpecs, FedProxIsSgdWithProx) {
  const auto spec = fedprox(hp_example());
  EXPECT_EQ(spec.name, "FedProx");
  EXPECT_EQ(spec.options.estimator, opt::Estimator::kSgd);
  EXPECT_DOUBLE_EQ(spec.options.mu, 0.1);
}

TEST(AlgorithmSpecs, FedProxVrVariantsUseTheirEstimators) {
  const auto svrg = fedproxvr_svrg(hp_example());
  EXPECT_EQ(svrg.name, "FedProxVR(SVRG)");
  EXPECT_EQ(svrg.options.estimator, opt::Estimator::kSvrg);
  EXPECT_DOUBLE_EQ(svrg.options.mu, 0.1);
  const auto sarah = fedproxvr_sarah(hp_example());
  EXPECT_EQ(sarah.name, "FedProxVR(SARAH)");
  EXPECT_EQ(sarah.options.estimator, opt::Estimator::kSarah);
}

TEST(AlgorithmSpecs, FedGdUsesFullGradients) {
  const auto spec = fedgd(hp_example());
  EXPECT_EQ(spec.name, "FedGD");
  EXPECT_EQ(spec.options.estimator, opt::Estimator::kFullGradient);
  EXPECT_DOUBLE_EQ(spec.options.mu, 0.0);
}

TEST(AlgorithmSpecs, SharedHyperParamsGiveComparableSpecs) {
  // The §5 protocol: all algorithms share beta, tau, batch size.
  const auto hp = hp_example();
  for (const auto& spec :
       {fedavg(hp), fedprox(hp), fedproxvr_svrg(hp), fedproxvr_sarah(hp)}) {
    EXPECT_DOUBLE_EQ(spec.options.eta, hp.eta()) << spec.name;
    EXPECT_EQ(spec.options.tau, hp.tau) << spec.name;
    EXPECT_EQ(spec.options.batch_size, hp.batch_size) << spec.name;
  }
}

}  // namespace
}  // namespace fedvr::core
