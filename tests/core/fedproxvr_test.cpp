// End-to-end tests of the public facade on small federated problems.
#include "core/fedproxvr.h"

#include <gtest/gtest.h>

#include <array>

#include "data/synthetic.h"
#include "nn/models.h"
#include "theory/smoothness.h"

namespace fedvr::core {
namespace {

data::FederatedDataset small_synthetic(std::size_t devices = 8) {
  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.dim = 12;
  cfg.num_classes = 4;
  cfg.min_samples = 30;
  cfg.max_samples = 80;
  cfg.seed = 3;
  return data::make_synthetic(cfg);
}

HyperParams small_hp() {
  HyperParams hp;
  hp.beta = 5.0;
  hp.smoothness_L = 1.0;
  hp.tau = 10;
  hp.mu = 0.1;
  hp.batch_size = 8;
  return hp;
}

fl::TrainerOptions short_run(std::size_t rounds = 15) {
  fl::TrainerOptions to;
  to.rounds = rounds;
  to.seed = 13;
  return to;
}

TEST(RunFederated, FedProxVrSvrgLearnsSyntheticTask) {
  const auto fed = small_synthetic();
  const auto model = nn::make_logistic_regression(12, 4);
  const auto trace =
      run_federated(model, fed, fedproxvr_svrg(small_hp()), short_run(25));
  ASSERT_EQ(trace.rounds.size(), 25u);
  EXPECT_EQ(trace.algorithm, "FedProxVR(SVRG)");
  EXPECT_LT(trace.back().train_loss, 0.7 * trace.rounds.front().train_loss);
  EXPECT_GT(trace.best_accuracy().first, 0.5);
}

TEST(RunFederated, FedProxVrSarahLearnsSyntheticTask) {
  const auto fed = small_synthetic();
  const auto model = nn::make_logistic_regression(12, 4);
  const auto trace =
      run_federated(model, fed, fedproxvr_sarah(small_hp()), short_run(25));
  EXPECT_LT(trace.back().train_loss, 0.7 * trace.rounds.front().train_loss);
}

TEST(CompareAlgorithms, AllStartFromTheSameInitialization) {
  const auto fed = small_synthetic();
  const auto model = nn::make_logistic_regression(12, 4);
  const std::array specs = {fedavg(small_hp()), fedproxvr_svrg(small_hp()),
                            fedproxvr_sarah(small_hp())};
  fl::TrainerOptions to = short_run(1);
  to.eval_every = 1;
  const auto traces = compare_algorithms(model, fed, specs, to);
  ASSERT_EQ(traces.size(), 3u);
  // After one identical-seed round with shared w0, losses are already
  // method-specific but must all be finite and in a sane range.
  for (const auto& t : traces) {
    ASSERT_EQ(t.rounds.size(), 1u);
    EXPECT_TRUE(std::isfinite(t.back().train_loss));
  }
}

TEST(CompareAlgorithms, VarianceReductionBeatsPlainSgdOnHeterogeneousData) {
  // The paper's headline claim, scaled down: at matched hyperparameters on
  // a heterogeneous synthetic task, FedProxVR reaches a lower training loss
  // than FedAvg. Seeds and sizes are fixed so the comparison is stable.
  data::SyntheticConfig cfg;
  cfg.num_devices = 10;
  cfg.dim = 15;
  cfg.num_classes = 5;
  cfg.alpha = 1.0;
  cfg.beta = 1.0;
  cfg.min_samples = 40;
  cfg.max_samples = 120;
  cfg.seed = 17;
  const auto fed = data::make_synthetic(cfg);
  const auto model = nn::make_logistic_regression(15, 5);
  // Single-sample inner steps maximize SGD's gradient variance — the regime
  // variance reduction is built for (Alg. 1 itself is single-sample). The
  // step size follows the paper: eta = 1/(beta L) with L estimated from the
  // data (Fig. 1 caption).
  util::Rng smooth_rng(23);
  const auto w_probe = [&] {
    util::Rng r(29);
    return model->initial_parameters(r);
  }();
  data::Dataset pooled(fed.train[0].sample_shape(), 0,
                       fed.train[0].num_classes());
  for (const auto& d : fed.train) pooled.append(d);
  const double L =
      theory::estimate_smoothness(*model, pooled, w_probe, smooth_rng);
  // Long local runs (tau >> 1) let the iterates drift from the anchor —
  // the regime where SGD's variance and client drift dominate and variance
  // reduction + the proximal anchor pay off (paper §4.3: small gamma favors
  // large tau).
  HyperParams hp;
  hp.beta = 4.0;
  hp.smoothness_L = L;
  hp.tau = 200;
  hp.mu = 0.5;
  hp.batch_size = 1;
  const std::array specs = {fedavg(hp), fedproxvr_svrg(hp),
                            fedproxvr_sarah(hp)};
  fl::TrainerOptions to;
  to.rounds = 30;
  to.seed = 19;
  const auto traces = compare_algorithms(model, fed, specs, to);
  // Compare where each method settles (mean of the last 10 evals), not the
  // single best round: SGD's noise floor is the phenomenon under test.
  auto tail_loss = [](const fl::TrainingTrace& t) {
    double sum = 0.0;
    const std::size_t n = 10;
    for (std::size_t i = t.rounds.size() - n; i < t.rounds.size(); ++i) {
      sum += t.rounds[i].train_loss;
    }
    return sum / static_cast<double>(n);
  };
  const double loss_fedavg = tail_loss(traces[0]);
  const double loss_svrg = tail_loss(traces[1]);
  const double loss_sarah = tail_loss(traces[2]);
  EXPECT_LT(loss_svrg, loss_fedavg);
  EXPECT_LT(loss_sarah, loss_fedavg);
}

TEST(RunFederated, ProvidedInitialPointOverridesSeedInit) {
  const auto fed = small_synthetic(4);
  const auto model = nn::make_logistic_regression(12, 4);
  std::vector<double> w0(model->num_parameters(), 0.0);
  fl::TrainerOptions to = short_run(1);
  const auto trace =
      run_federated(model, fed, fedgd(small_hp()), to, w0);
  // From the zero vector, the round-1 loss is reproducible across calls.
  const auto trace2 =
      run_federated(model, fed, fedgd(small_hp()), to,
                    std::vector<double>(model->num_parameters(), 0.0));
  EXPECT_DOUBLE_EQ(trace.back().train_loss, trace2.back().train_loss);
}

}  // namespace
}  // namespace fedvr::core
