#include "obs/profiler.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace fedvr::obs {
namespace {

using fedvr::util::Error;

TEST(RoundProfiler, DisabledProfilerIsANullSink) {
  RoundProfiler p(false);
  p.begin_round(1, 4);
  p.record_device(0, 1.0, 10);
  p.add_phase_seconds(Phase::kLocalSolve, 1.0);
  p.end_round();
  EXPECT_TRUE(p.rounds().empty());
  EXPECT_DOUBLE_EQ(p.totals().sum(), 0.0);
  EXPECT_FALSE(p.estimate().valid());
}

TEST(RoundProfiler, AccumulatesPhasesPerRoundAndInTotals) {
  RoundProfiler p(true);
  p.begin_round(1, 2);
  p.add_phase_seconds(Phase::kBroadcast, 0.1);
  p.add_phase_seconds(Phase::kLocalSolve, 1.0);
  p.add_phase_seconds(Phase::kAggregate, 0.2);
  p.add_phase_seconds(Phase::kEval, 0.5);
  p.end_round();
  p.begin_round(2, 2);
  p.add_phase_seconds(Phase::kBroadcast, 0.3);
  p.add_phase_seconds(Phase::kLocalSolve, 2.0);
  p.end_round();

  ASSERT_EQ(p.rounds().size(), 2u);
  const auto& r1 = p.rounds()[0];
  EXPECT_EQ(r1.round, 1u);
  EXPECT_DOUBLE_EQ(r1.phase(Phase::kBroadcast), 0.1);
  EXPECT_DOUBLE_EQ(r1.phase(Phase::kEval), 0.5);
  const auto& r2 = p.rounds()[1];
  EXPECT_DOUBLE_EQ(r2.phase(Phase::kBroadcast), 0.3);
  EXPECT_DOUBLE_EQ(r2.phase(Phase::kEval), 0.0);
  EXPECT_DOUBLE_EQ(p.totals().phase(Phase::kBroadcast), 0.4);
  EXPECT_DOUBLE_EQ(p.totals().phase(Phase::kLocalSolve), 3.0);
  EXPECT_DOUBLE_EQ(p.totals().sum(), 4.1);
}

TEST(RoundProfiler, EstimatesTimingModelFromSamples) {
  RoundProfiler p(true);
  // Round 1: com = 0.1 + 0.2; devices: 2s/10 iters and 1s/10 iters.
  p.begin_round(1, 3);
  p.add_phase_seconds(Phase::kBroadcast, 0.1);
  p.add_phase_seconds(Phase::kAggregate, 0.2);
  p.record_device(0, 2.0, 10);
  p.record_device(1, 1.0, 10);
  p.end_round();
  // Round 2: com = 0.3 + 0.4; one device: 3s/20 iters. Device 2 never
  // participates and must not pollute the estimate.
  p.begin_round(2, 3);
  p.add_phase_seconds(Phase::kBroadcast, 0.3);
  p.add_phase_seconds(Phase::kAggregate, 0.4);
  p.record_device(0, 3.0, 20);
  p.end_round();

  const TimingEstimate est = p.estimate();
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.rounds, 2u);
  EXPECT_DOUBLE_EQ(est.d_com, (0.3 + 0.7) / 2.0);
  EXPECT_DOUBLE_EQ(est.d_cmp, 6.0 / 40.0);
  EXPECT_DOUBLE_EQ(est.round_time(10), est.d_com + 10.0 * est.d_cmp);
}

TEST(RoundProfiler, EvalTimeIsExcludedFromDcom) {
  RoundProfiler p(true);
  p.begin_round(1, 1);
  p.add_phase_seconds(Phase::kBroadcast, 0.1);
  p.add_phase_seconds(Phase::kAggregate, 0.1);
  p.add_phase_seconds(Phase::kEval, 100.0);  // diagnostics, not round time
  p.record_device(0, 1.0, 10);
  p.end_round();
  EXPECT_DOUBLE_EQ(p.estimate().d_com, 0.2);
}

TEST(RoundProfiler, ScopedPhaseMeasuresElapsedTime) {
  RoundProfiler p(true);
  p.begin_round(1, 1);
  {
    RoundProfiler::ScopedPhase phase(p, Phase::kLocalSolve);
    // Burn a little time; any positive measurement passes.
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }
  p.end_round();
  EXPECT_GT(p.rounds()[0].phase(Phase::kLocalSolve), 0.0);
}

TEST(RoundProfiler, RecordDeviceValidation) {
  RoundProfiler p(true);
  EXPECT_THROW(p.record_device(0, 1.0, 1), Error);  // no open round
  p.begin_round(1, 2);
  EXPECT_THROW(p.record_device(2, 1.0, 1), Error);  // device out of range
}

TEST(RoundProfiler, BeginRoundClosesAnOpenRound) {
  RoundProfiler p(true);
  p.begin_round(1, 1);
  p.add_phase_seconds(Phase::kBroadcast, 0.5);
  p.begin_round(2, 1);  // implicitly ends round 1
  p.end_round();
  ASSERT_EQ(p.rounds().size(), 2u);
  EXPECT_EQ(p.rounds()[0].round, 1u);
  EXPECT_DOUBLE_EQ(p.rounds()[0].phase(Phase::kBroadcast), 0.5);
  EXPECT_EQ(p.rounds()[1].round, 2u);
}

TEST(RoundProfiler, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kBroadcast), "broadcast");
  EXPECT_STREQ(phase_name(Phase::kLocalSolve), "local_solve");
  EXPECT_STREQ(phase_name(Phase::kAggregate), "aggregate");
  EXPECT_STREQ(phase_name(Phase::kEval), "eval");
}

}  // namespace
}  // namespace fedvr::obs
