// Concurrency stress for the lock-free observability primitives. These
// tests exist primarily for the ThreadSanitizer build (-DFEDVR_SANITIZE=
// thread): they hammer every relaxed-atomic site — the enable flag, sharded
// counters, the gauge CAS loop, histogram recording, registry registration,
// and the pool's own obs counters — from many threads at once, so a
// regression that introduces a real data race is flagged by TSan here even
// if the functional suites happen not to interleave the racy way.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/registry.h"
#include "util/thread_pool.h"

namespace fedvr::obs {
namespace {

using fedvr::util::ThreadPool;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = set_enabled(false); }
  void TearDown() override { set_enabled(prev_); }
  bool prev_ = false;
};

TEST_F(ConcurrencyStressTest, CounterGaugeHistogramUnderContention) {
  Registry reg;
  Counter& c = reg.counter("stress.counter");
  Gauge& g = reg.gauge("stress.gauge");
  Histogram& h = reg.histogram("stress.hist", {0.25, 0.5, 0.75});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        c.add(1);
        g.add(1.0);
        h.record(static_cast<double>((t + i) % 4) * 0.25);
        if (i % 64 == 0) {
          (void)c.value();  // concurrent reads while writers are active
          (void)g.value();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Joins give the happens-before edge: totals must now be exact.
  EXPECT_EQ(c.value(), kThreads * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kIters));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kIters);
}

TEST_F(ConcurrencyStressTest, RegistrationRacesResolveToOneMetric) {
  Registry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = reg.counter("stress.same_name");
      c.add(1);
      handles[t] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(handles[t], handles[0]);  // one metric, stable handle
  }
  EXPECT_EQ(handles[0]->value(), kThreads);
}

TEST_F(ConcurrencyStressTest, EnableToggleRacesInstrumentation) {
  // Flip the global flag while pool workers run instrumented tasks: stale
  // reads of the flag may skip or record a few samples, but must never
  // race. The final counter value is whatever it is — the assertion here
  // is TSan's, not gtest's.
  ThreadPool pool(4);
  std::thread toggler([] {
    for (int i = 0; i < 200; ++i) {
      set_enabled(i % 2 == 0);
      std::this_thread::yield();
    }
    set_enabled(false);
  });
  for (int repeat = 0; repeat < 20; ++repeat) {
    pool.parallel_for(0, 256, [](std::size_t i) {
      FEDVR_OBS_COUNT("stress.toggle_races", 1);
      (void)now_ns();
      (void)i;
    });
  }
  toggler.join();
}

TEST_F(ConcurrencyStressTest, SnapshotWhileWritersActive) {
  set_enabled(true);
  Registry reg;
  Counter& c = reg.counter("stress.snap");
  std::thread writer([&] {
    for (std::size_t i = 0; i < 20000; ++i) c.add(1);
  });
  for (int i = 0; i < 50; ++i) {
    const auto snap = reg.snapshot();  // mutex-guarded walk + relaxed reads
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_LE(snap.counters[0].value, 20000u);
  }
  writer.join();
  EXPECT_EQ(c.value(), 20000u);
}

}  // namespace
}  // namespace fedvr::obs
