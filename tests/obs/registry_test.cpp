#include "obs/registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::obs {
namespace {

using fedvr::util::Error;
using fedvr::util::ThreadPool;

// Restores the global enable flag so suites don't interfere.
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = set_enabled(false); }
  void TearDown() override { set_enabled(prev_); }
  bool prev_ = false;
};

TEST_F(RegistryTest, CounterAddsAndResets) {
  Registry reg;
  Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(RegistryTest, CounterHandleIsStable) {
  Registry reg;
  Counter& a = reg.counter("same");
  Counter& b = reg.counter("same");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(RegistryTest, ShardedCounterIsExactUnderThreadPool) {
  Registry reg;
  Counter& c = reg.counter("parallel");
  ThreadPool pool(4);
  constexpr std::size_t kIters = 20000;
  pool.parallel_for(0, kIters, [&](std::size_t) { c.add(1); });
  // Writers have quiesced (parallel_for blocked until done): the sum over
  // shards must be exact, not approximate.
  EXPECT_EQ(c.value(), kIters);
}

TEST_F(RegistryTest, GaugeSetAddUnderThreadPool) {
  Registry reg;
  Gauge& g = reg.gauge("g");
  g.set(10.0);
  ThreadPool pool(4);
  pool.parallel_for(0, 1000, [&](std::size_t) { g.add(1.0); });
  pool.parallel_for(0, 500, [&](std::size_t) { g.add(-2.0); });
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST_F(RegistryTest, HistogramBucketSemantics) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 5.0});
  // Upper edges are inclusive: v <= bound lands in the bucket.
  h.record(0.5);
  h.record(1.0);
  h.record(1.5);
  h.record(5.0);
  h.record(7.0);  // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
}

TEST_F(RegistryTest, HistogramTotalsExactUnderThreadPool) {
  Registry reg;
  Histogram& h = reg.histogram("ph", {0.25, 0.5, 1.0});
  ThreadPool pool(4);
  constexpr std::size_t kIters = 8000;
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    h.record(static_cast<double>(i % 4) * 0.25);  // 0, .25, .5, .75
  });
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, kIters);
  EXPECT_EQ(s.counts[0], kIters / 2);  // 0 and 0.25
  EXPECT_EQ(s.counts[1], kIters / 4);  // 0.5
  EXPECT_EQ(s.counts[2], kIters / 4);  // 0.75
  EXPECT_EQ(s.counts[3], 0u);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kIters / 4) * 1.5);
}

TEST_F(RegistryTest, HistogramValidatesBounds) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("empty", {}), Error);
  EXPECT_THROW((void)reg.histogram("bad", {2.0, 1.0}), Error);
  (void)reg.histogram("ok", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("ok", {3.0, 4.0}), Error);
  EXPECT_NO_THROW((void)reg.histogram("ok", {}));  // reuse registered bounds
}

TEST_F(RegistryTest, NameCannotChangeMetricType) {
  Registry reg;
  (void)reg.counter("metric");
  EXPECT_THROW((void)reg.gauge("metric"), Error);
  EXPECT_THROW((void)reg.histogram("metric", {1.0}), Error);
}

TEST_F(RegistryTest, SnapshotJsonlGoldenOutput) {
  Registry reg;
  reg.counter("requests").add(3);
  reg.gauge("depth").set(1.5);
  Histogram& h = reg.histogram("latency", {1.0, 2.0});
  h.record(0.5);
  h.record(3.0);
  std::ostringstream os;
  reg.snapshot().write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"counter\",\"name\":\"requests\",\"value\":3}\n"
            "{\"type\":\"gauge\",\"name\":\"depth\",\"value\":1.5}\n"
            "{\"type\":\"histogram\",\"name\":\"latency\",\"count\":2,"
            "\"sum\":3.5,\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":2,\"count\":0},{\"le\":\"inf\",\"count\":1}]}\n");
}

TEST_F(RegistryTest, ResetValuesKeepsRegistrations) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h", {1.0}).record(0.5);
  reg.reset_values();
  const auto s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].value, 0u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 0.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].data.count, 0u);
}

TEST_F(RegistryTest, ObsCountMacroRespectsEnableFlag) {
  Counter& c = Registry::global().counter("test.macro_gate");
  const std::uint64_t before = c.value();
  FEDVR_OBS_COUNT("test.macro_gate", 7);  // disabled: no-op
  EXPECT_EQ(c.value(), before);
  set_enabled(true);
  FEDVR_OBS_COUNT("test.macro_gate", 7);
  set_enabled(false);
  EXPECT_EQ(c.value(), before + 7);
}

TEST_F(RegistryTest, ThreadPoolPublishesQueueMetricsWhenEnabled) {
  auto& reg = Registry::global();
  const std::uint64_t submitted_before =
      reg.counter("pool.tasks_submitted").value();
  const std::uint64_t executed_before =
      reg.counter("pool.tasks_executed").value();
  set_enabled(true);
  {
    ThreadPool pool(3);
    pool.parallel_for(0, 64, [](std::size_t) {}, /*grain=*/1);
    pool.submit([] {}).get();
  }  // pool drained and joined
  set_enabled(false);
  const std::uint64_t submitted =
      reg.counter("pool.tasks_submitted").value() - submitted_before;
  const std::uint64_t executed =
      reg.counter("pool.tasks_executed").value() - executed_before;
  EXPECT_GE(submitted, 2u);  // at least one parallel_for chunk + the submit
  EXPECT_EQ(submitted, executed);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.queue_depth").value(), 0.0);
}

}  // namespace
}  // namespace fedvr::obs
