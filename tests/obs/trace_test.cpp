#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace fedvr::obs {
namespace {

// Every test starts with collection off and an empty span store.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = set_enabled(false);
    clear_spans();
  }
  void TearDown() override {
    clear_spans();
    set_enabled(prev_);
  }
  bool prev_ = false;
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    OBS_SPAN("never");
  }
  EXPECT_TRUE(collect_spans().empty());
}

TEST_F(TraceTest, NestedSpansRecordDepthAndContainment) {
  set_enabled(true);
  {
    OBS_SPAN("outer");
    {
      OBS_SPAN("inner");
    }
  }
  set_enabled(false);
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  // Temporal nesting: inner entirely inside outer.
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[1].end_ns);
  EXPECT_EQ(spans[0].thread_id, spans[1].thread_id);
}

TEST_F(TraceTest, SequentialSpansAreOrderedByStart) {
  set_enabled(true);
  {
    OBS_SPAN("first");
  }
  {
    OBS_SPAN("second");
  }
  {
    OBS_SPAN("third");
  }
  set_enabled(false);
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "first");
  EXPECT_STREQ(spans[1].name, "second");
  EXPECT_STREQ(spans[2].name, "third");
  EXPECT_LE(spans[0].end_ns, spans[1].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[2].start_ns);
  // Depth resets between siblings.
  for (const auto& s : spans) EXPECT_EQ(s.depth, 0u);
}

TEST_F(TraceTest, ChromeTraceGoldenOutput) {
  // Inject records with fixed timestamps; only the thread id is discovered
  // at runtime (it is a process-wide dense slot, not std::thread::id).
  detail::record_span({"alpha", 1000, 3000, 0, 0});
  detail::record_span({"beta", 2000, 2500, 0, 1});
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  const std::string tid = std::to_string(spans[0].thread_id);
  std::ostringstream os;
  write_chrome_trace(os);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":[\n"
            "{\"name\":\"alpha\",\"cat\":\"fedvr\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":" + tid + ",\"ts\":1,\"dur\":2,\"args\":{\"depth\":0}},\n"
            "{\"name\":\"beta\",\"cat\":\"fedvr\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":" + tid + ",\"ts\":2,\"dur\":0.5,"
            "\"args\":{\"depth\":1}}\n"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST_F(TraceTest, SpanSummaryJsonlGoldenOutput) {
  detail::record_span({"work", 0, 1000, 0, 0});     // 1 us
  detail::record_span({"work", 5000, 7000, 0, 0});  // 2 us
  detail::record_span({"idle", 0, 4000, 0, 0});     // 4 us
  std::ostringstream os;
  write_span_summary_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"type\":\"span_summary\",\"name\":\"idle\",\"count\":1,"
            "\"total_us\":4,\"mean_us\":4,\"min_us\":4,\"max_us\":4}\n"
            "{\"type\":\"span_summary\",\"name\":\"work\",\"count\":2,"
            "\"total_us\":3,\"mean_us\":1.5,\"min_us\":1,\"max_us\":2}\n");
}

TEST_F(TraceTest, RingBufferOverwritesOldestAndCountsDrops) {
  constexpr std::size_t kPushed = 20000;
  for (std::size_t i = 0; i < kPushed; ++i) {
    detail::record_span({"s", i, i + 1, 0, 0});
  }
  const auto spans = collect_spans();
  ASSERT_FALSE(spans.empty());
  ASSERT_LT(spans.size(), kPushed);  // capacity is smaller than kPushed
  EXPECT_EQ(spans_dropped(), kPushed - spans.size());
  // The survivors are the newest records, oldest-first.
  EXPECT_EQ(spans.front().start_ns, kPushed - spans.size());
  EXPECT_EQ(spans.back().start_ns, kPushed - 1);
}

TEST_F(TraceTest, ClearSpansDiscardsRecordsAndDropCount) {
  detail::record_span({"x", 0, 1, 0, 0});
  ASSERT_EQ(collect_spans().size(), 1u);
  clear_spans();
  EXPECT_TRUE(collect_spans().empty());
  EXPECT_EQ(spans_dropped(), 0u);
}

TEST_F(TraceTest, EnableFlagCheckedAtSpanEntry) {
  // A span opened while enabled records even if collection is disabled
  // before it closes; a span opened while disabled never records.
  set_enabled(true);
  {
    OBS_SPAN("open_enabled");
    set_enabled(false);
  }
  {
    OBS_SPAN("open_disabled");
  }
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "open_enabled");
}

}  // namespace
}  // namespace fedvr::obs
