// Finite-difference gradient checking shared by the nn test suites.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>
#include <vector>

namespace fedvr::testing {

/// Verifies `analytic` (gradient of `f` at `w`) against central differences.
/// `tolerance` is relative: |ad - fd| <= tolerance * max(1, |fd|).
inline void expect_gradient_matches(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> w, std::span<const double> analytic,
    double step = 1e-6, double tolerance = 1e-5) {
  ASSERT_EQ(w.size(), analytic.size());
  std::vector<double> probe(w.begin(), w.end());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double original = probe[i];
    probe[i] = original + step;
    const double up = f(probe);
    probe[i] = original - step;
    const double down = f(probe);
    probe[i] = original;
    const double fd = (up - down) / (2.0 * step);
    const double scale = std::max(1.0, std::abs(fd));
    EXPECT_NEAR(analytic[i], fd, tolerance * scale)
        << "gradient mismatch at parameter " << i;
  }
}

}  // namespace fedvr::testing
