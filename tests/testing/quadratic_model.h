// A least-squares test model with analytically known behaviour:
//   f_i(w) = 0.5 ||w - x_i||^2   (x_i = sample i's feature vector)
//   F(w)   = 0.5 ||w - mean(x)||^2 + const,  grad F(w) = w - mean(x).
//
// Key property exploited by the solver tests: for this family the SVRG and
// SARAH estimators are *exact* — per-sample gradient differences cancel the
// sampled x_i, so v_t == grad F(w_t) for every batch choice. Inner-loop
// trajectories must therefore coincide with full-gradient descent, batch
// size notwithstanding.
//
// predict() classifies by the sign of the first coordinate relative to the
// sample's first feature — enough to exercise the accuracy plumbing.
#pragma once

#include <algorithm>
#include <vector>

#include "nn/model.h"
#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::testing {

class QuadraticModel final : public nn::Model {
 public:
  explicit QuadraticModel(std::size_t dim) : dim_(dim) {}

  [[nodiscard]] std::size_t num_parameters() const override { return dim_; }

  void initialize(util::Rng& rng, std::span<double> w) const override {
    FEDVR_CHECK(w.size() == dim_);
    for (auto& v : w) v = rng.normal();
  }

  [[nodiscard]] double loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices)
      const override {
    FEDVR_CHECK(w.size() == dim_ && !indices.empty());
    double total = 0.0;
    for (std::size_t i : indices) {
      total += 0.5 * tensor::squared_distance(w, ds.sample(i));
    }
    return total / static_cast<double>(indices.size());
  }

  double loss_and_gradient(std::span<const double> w, const data::Dataset& ds,
                           std::span<const std::size_t> indices,
                           std::span<double> grad) const override {
    FEDVR_CHECK(grad.size() == dim_);
    tensor::fill(grad, 0.0);
    double total = 0.0;
    for (std::size_t i : indices) {
      const auto x = ds.sample(i);
      total += 0.5 * tensor::squared_distance(w, x);
      for (std::size_t j = 0; j < dim_; ++j) grad[j] += w[j] - x[j];
    }
    const double inv = 1.0 / static_cast<double>(indices.size());
    tensor::scal(inv, grad);
    return total * inv;
  }

  void predict(std::span<const double> w, const data::Dataset& ds,
               std::span<const std::size_t> indices,
               std::span<std::size_t> out) const override {
    FEDVR_CHECK(out.size() == indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const auto x = ds.sample(indices[k]);
      out[k] = (w[0] - x[0]) > 0.0 ? 1u : 0u;
    }
  }

 private:
  std::size_t dim_;
};

/// Dataset of n points ~ N(center, spread^2 I) for the quadratic model.
inline data::Dataset quadratic_dataset(std::size_t n, std::size_t dim,
                                       double center, double spread,
                                       std::uint64_t seed) {
  data::Dataset ds(tensor::Shape({dim}), n, 2);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : ds.mutable_sample(i)) v = rng.normal(center, spread);
    ds.set_label(i, static_cast<int>(i % 2));
  }
  return ds;
}

/// mean(x) — the unique minimizer of the quadratic objective.
inline std::vector<double> dataset_mean(const data::Dataset& ds) {
  std::vector<double> mean(ds.feature_dim(), 0.0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    tensor::axpy(1.0, ds.sample(i), mean);
  }
  tensor::scal(1.0 / static_cast<double>(ds.size()), mean);
  return mean;
}

}  // namespace fedvr::testing
