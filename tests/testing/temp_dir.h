// Per-process unique scratch directories for tests that write files.
//
// ctest -j runs every gtest case as its own process; with a *fixed* name
// under /tmp, two concurrent cases of the same suite share a directory and
// one process's TearDown remove_all() deletes the other's files mid-test.
// Flaky at default speed, near-certain under the sanitizer builds' slowdown.
#pragma once

#include <filesystem>
#include <string>

#include <unistd.h>

namespace fedvr::testing {

/// Creates and returns <tmp>/<prefix>.<pid>, unique per test process so
/// parallel ctest invocations of the same suite cannot collide.
inline std::filesystem::path make_temp_dir(const std::string& prefix) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (prefix + "." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace fedvr::testing
