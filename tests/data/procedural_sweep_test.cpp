// Parameterized sweep: the procedural image generator must stay well-formed
// across canvas sizes and both families (bench defaults use several sizes).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "data/federated_split.h"
#include "data/procedural_images.h"
#include "tensor/vecops.h"

namespace fedvr::data {
namespace {

using fedvr::util::Rng;
using SweepParam = std::tuple<ImageFamily, std::size_t>;  // family, side

class ProceduralSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ProceduralImageConfig config() const {
    const auto [family, side] = GetParam();
    ProceduralImageConfig cfg;
    cfg.family = family;
    cfg.side = side;
    return cfg;
  }
};

TEST_P(ProceduralSweep, EveryClassRendersVisibleDistinctGlyphs) {
  const auto cfg = config();
  const std::size_t n = cfg.side * cfg.side;
  std::vector<std::vector<double>> images;
  for (int c = 0; c < 10; ++c) {
    Rng rng(42);
    std::vector<double> img(n);
    render_procedural_image(cfg, c, rng, img);
    double total = 0.0;
    for (double p : img) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0);
      total += p;
    }
    // Visible ink on any canvas size: at least 2% mean intensity.
    EXPECT_GT(total / static_cast<double>(n), 0.02) << "class " << c;
    images.push_back(std::move(img));
  }
  // Pairwise distinctness scales with canvas area.
  const double min_sq = 0.002 * static_cast<double>(n);
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      EXPECT_GT(tensor::squared_distance(images[static_cast<std::size_t>(a)],
                                         images[static_cast<std::size_t>(b)]),
                min_sq)
          << "classes " << a << "/" << b;
    }
  }
}

TEST_P(ProceduralSweep, BalancedPoolRoundTripsThroughSharding) {
  const auto cfg = config();
  const Dataset pool = make_procedural_pool_balanced(cfg, 20, 3);
  LabelShardConfig shard;
  shard.num_devices = 6;
  shard.min_samples = 10;
  shard.max_samples = 40;
  const FederatedDataset fed = shard_by_label(pool, shard);
  EXPECT_EQ(fed.num_devices(), 6u);
  EXPECT_EQ(fed.train.front().feature_dim(),
            std::get<1>(GetParam()) * std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSizes, ProceduralSweep,
    ::testing::Combine(::testing::Values(ImageFamily::kDigits,
                                         ImageFamily::kFashion),
                       ::testing::Values<std::size_t>(8, 12, 16, 28)));

}  // namespace
}  // namespace fedvr::data
