#include "data/image_datasets.h"

#include <gtest/gtest.h>

namespace fedvr::data {
namespace {

TEST(ImagePaths, MnistFilesLiveInDataDir) {
  ImageDatasetConfig cfg;
  cfg.family = ImageFamily::kDigits;
  cfg.data_dir = "my_data";
  EXPECT_EQ(idx_images_path(cfg), "my_data/train-images-idx3-ubyte");
  EXPECT_EQ(idx_labels_path(cfg), "my_data/train-labels-idx1-ubyte");
}

TEST(ImagePaths, FashionFilesLiveInSubdirectory) {
  ImageDatasetConfig cfg;
  cfg.family = ImageFamily::kFashion;
  cfg.data_dir = "my_data";
  EXPECT_EQ(idx_images_path(cfg), "my_data/fashion/train-images-idx3-ubyte");
  EXPECT_EQ(idx_labels_path(cfg), "my_data/fashion/train-labels-idx1-ubyte");
}

TEST(MakeFederatedImages, ProceduralFallbackProducesValidFederation) {
  ImageDatasetConfig cfg;
  cfg.data_dir = "/definitely/not/a/real/path";
  cfg.side = 8;
  cfg.pool_size = 300;
  cfg.shard.num_devices = 5;
  cfg.shard.min_samples = 20;
  cfg.shard.max_samples = 60;
  const auto result = make_federated_images(cfg);
  EXPECT_FALSE(result.used_real_files);
  EXPECT_EQ(result.fed.num_devices(), 5u);
  EXPECT_EQ(result.fed.train.front().sample_shape(),
            tensor::Shape({1, 8, 8}));
  // Devices carry at most shard.labels_per_device distinct labels.
  for (const auto& d : result.fed.train) {
    std::size_t distinct = 0;
    for (auto count : d.class_histogram()) distinct += (count > 0);
    EXPECT_LE(distinct, cfg.shard.labels_per_device);
  }
}

TEST(MakeFederatedImages, FamiliesProduceDifferentPools) {
  ImageDatasetConfig digits;
  digits.data_dir = "/none";
  digits.side = 8;
  digits.pool_size = 100;
  digits.shard.num_devices = 2;
  digits.shard.min_samples = 10;
  digits.shard.max_samples = 30;
  ImageDatasetConfig fashion = digits;
  fashion.family = ImageFamily::kFashion;
  const auto a = make_federated_images(digits);
  const auto b = make_federated_images(fashion);
  // Same seeds, same shapes, different glyph families: pixels must differ.
  const auto xa = a.fed.train[0].sample(0);
  const auto xb = b.fed.train[0].sample(0);
  double diff = 0.0;
  for (std::size_t i = 0; i < xa.size(); ++i) {
    diff += std::abs(xa[i] - xb[i]);
  }
  EXPECT_GT(diff, 0.5);
}

}  // namespace
}  // namespace fedvr::data
