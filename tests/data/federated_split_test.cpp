#include "data/federated_split.h"

#include <gtest/gtest.h>

#include <set>

#include "data/procedural_images.h"
#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;

Dataset balanced_pool() {
  ProceduralImageConfig cfg;
  cfg.side = 10;  // small and fast for tests
  return make_procedural_pool_balanced(cfg, 40, 17);
}

TEST(DeviceLabelSet, CyclesThroughAllClasses) {
  std::set<int> first_labels;
  for (std::size_t k = 0; k < 10; ++k) {
    const auto ls = device_label_set(k, 10, 2);
    ASSERT_EQ(ls.size(), 2u);
    first_labels.insert(ls[0]);
  }
  EXPECT_EQ(first_labels.size(), 10u);
}

TEST(DeviceLabelSet, LabelsAreDistinct) {
  for (std::size_t k = 0; k < 200; ++k) {
    const auto ls = device_label_set(k, 10, 3);
    const std::set<int> uniq(ls.begin(), ls.end());
    EXPECT_EQ(uniq.size(), 3u) << "device " << k;
  }
}

TEST(DeviceLabelSet, PairsVaryAcrossDeviceBlocks) {
  // Devices 0 and 10 share the first label but must differ in the second
  // (stride grows with the device block).
  const auto a = device_label_set(0, 10, 2);
  const auto b = device_label_set(10, 10, 2);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_NE(a[1], b[1]);
}

TEST(DeviceLabelSet, RejectsImpossibleRequests) {
  EXPECT_THROW((void)device_label_set(0, 10, 11), Error);
  EXPECT_THROW((void)device_label_set(0, 10, 0), Error);
}

TEST(ShardByLabel, EachDeviceHasOnlyItsTwoLabels) {
  const Dataset pool = balanced_pool();
  LabelShardConfig cfg;
  cfg.num_devices = 20;
  cfg.min_samples = 8;
  cfg.max_samples = 30;
  const FederatedDataset fed = shard_by_label(pool, cfg);
  ASSERT_EQ(fed.num_devices(), 20u);
  for (std::size_t k = 0; k < 20; ++k) {
    const auto expected = device_label_set(k, 10, 2);
    const std::set<int> allowed(expected.begin(), expected.end());
    std::set<int> seen;
    for (std::size_t i = 0; i < fed.train[k].size(); ++i) {
      seen.insert(fed.train[k].label(i));
    }
    for (std::size_t i = 0; i < fed.test[k].size(); ++i) {
      seen.insert(fed.test[k].label(i));
    }
    for (int y : seen) {
      EXPECT_TRUE(allowed.count(y)) << "device " << k << " has label " << y;
    }
    EXPECT_LE(seen.size(), 2u);
  }
}

TEST(ShardByLabel, SizesFollowConfiguredRange) {
  const Dataset pool = balanced_pool();
  LabelShardConfig cfg;
  cfg.num_devices = 10;
  cfg.min_samples = 10;
  cfg.max_samples = 50;
  const FederatedDataset fed = shard_by_label(pool, cfg);
  for (std::size_t k = 0; k < 10; ++k) {
    const std::size_t total = fed.train[k].size() + fed.test[k].size();
    EXPECT_GE(total, 10u);
    EXPECT_LE(total, 50u);
  }
}

TEST(ShardByLabel, DeterministicInSeed) {
  const Dataset pool = balanced_pool();
  LabelShardConfig cfg;
  cfg.num_devices = 5;
  cfg.min_samples = 8;
  cfg.max_samples = 20;
  const FederatedDataset a = shard_by_label(pool, cfg);
  const FederatedDataset b = shard_by_label(pool, cfg);
  for (std::size_t k = 0; k < 5; ++k) {
    ASSERT_EQ(a.train[k].size(), b.train[k].size());
    for (std::size_t i = 0; i < a.train[k].size(); ++i) {
      EXPECT_EQ(a.train[k].label(i), b.train[k].label(i));
    }
  }
}

TEST(ShardByLabel, WrapsWhenPoolIsSmall) {
  // Tiny pool, big demand: sampling-with-reuse must still terminate and
  // fill every device.
  ProceduralImageConfig pc;
  pc.side = 8;
  const Dataset pool = make_procedural_pool_balanced(pc, 2, 3);
  LabelShardConfig cfg;
  cfg.num_devices = 4;
  cfg.min_samples = 20;
  cfg.max_samples = 40;
  const FederatedDataset fed = shard_by_label(pool, cfg);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GE(fed.train[k].size() + fed.test[k].size(), 20u);
  }
}

TEST(ShardByLabel, EmptyPoolThrows) {
  const Dataset empty(tensor::Shape({4}), 0, 10);
  LabelShardConfig cfg;
  EXPECT_THROW((void)shard_by_label(empty, cfg), Error);
}

TEST(ShardByLabel, MissingClassThrows) {
  Dataset pool(tensor::Shape({2}), 10, 10);  // all labels default to 0
  LabelShardConfig cfg;
  EXPECT_THROW((void)shard_by_label(pool, cfg), Error);
}

}  // namespace
}  // namespace fedvr::data
