#include "data/procedural_images.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

class RenderAllClasses
    : public ::testing::TestWithParam<std::tuple<ImageFamily, int>> {};

TEST_P(RenderAllClasses, ProducesInkInRange) {
  const auto [family, label] = GetParam();
  ProceduralImageConfig cfg;
  cfg.family = family;
  Rng rng(7);
  std::vector<double> img(cfg.side * cfg.side);
  render_procedural_image(cfg, label, rng, img);
  double total = 0.0;
  for (double p : img) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  // Every glyph must deposit a visible amount of ink but not flood the
  // canvas.
  EXPECT_GT(total, 10.0);
  EXPECT_LT(total, 0.8 * static_cast<double>(img.size()));
}

INSTANTIATE_TEST_SUITE_P(
    BothFamiliesAllLabels, RenderAllClasses,
    ::testing::Combine(::testing::Values(ImageFamily::kDigits,
                                         ImageFamily::kFashion),
                       ::testing::Range(0, 10)));

TEST(ProceduralImages, ClassesAreVisuallyDistinct) {
  // Noise-free class prototypes must differ pairwise by a healthy margin,
  // otherwise the classification task would be ill-posed.
  ProceduralImageConfig cfg;
  cfg.noise_stddev = 0.0;
  cfg.max_shift = 0.0;
  cfg.max_rotate = 0.0;
  cfg.min_scale = 1.0;
  cfg.max_scale = 1.0;
  cfg.max_shear = 0.0;
  const std::size_t n = cfg.side * cfg.side;
  std::vector<std::vector<double>> protos;
  for (int c = 0; c < 10; ++c) {
    Rng rng(1);
    std::vector<double> img(n);
    render_procedural_image(cfg, c, rng, img);
    protos.push_back(std::move(img));
  }
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      const double d2 = tensor::squared_distance(protos[static_cast<std::size_t>(a)],
                                                 protos[static_cast<std::size_t>(b)]);
      EXPECT_GT(d2, 1.0) << "classes " << a << " and " << b
                         << " are nearly identical";
    }
  }
}

TEST(ProceduralImages, SamplesOfSameClassVary) {
  ProceduralImageConfig cfg;
  Rng rng(3);
  std::vector<double> a(cfg.side * cfg.side), b(cfg.side * cfg.side);
  render_procedural_image(cfg, 4, rng, a);
  render_procedural_image(cfg, 4, rng, b);
  EXPECT_GT(tensor::squared_distance(a, b), 0.1);
}

TEST(ProceduralImages, RenderIsDeterministicInRngState) {
  ProceduralImageConfig cfg;
  Rng r1(9), r2(9);
  std::vector<double> a(cfg.side * cfg.side), b(cfg.side * cfg.side);
  render_procedural_image(cfg, 2, r1, a);
  render_procedural_image(cfg, 2, r2, b);
  EXPECT_EQ(a, b);
}

TEST(ProceduralImages, InvalidLabelThrows) {
  ProceduralImageConfig cfg;
  Rng rng(1);
  std::vector<double> img(cfg.side * cfg.side);
  EXPECT_THROW(render_procedural_image(cfg, 10, rng, img), Error);
  EXPECT_THROW(render_procedural_image(cfg, -1, rng, img), Error);
}

TEST(ProceduralImages, WrongBufferSizeThrows) {
  ProceduralImageConfig cfg;
  Rng rng(1);
  std::vector<double> img(10);
  EXPECT_THROW(render_procedural_image(cfg, 0, rng, img), Error);
}

TEST(ProceduralImages, SupportsSmallerCanvas) {
  ProceduralImageConfig cfg;
  cfg.side = 14;
  Rng rng(5);
  std::vector<double> img(14 * 14);
  render_procedural_image(cfg, 7, rng, img);
  double total = 0.0;
  for (double p : img) total += p;
  EXPECT_GT(total, 2.0);
}

TEST(ProceduralPool, UniformPoolHasAllClasses) {
  ProceduralImageConfig cfg;
  cfg.side = 14;
  const Dataset pool = make_procedural_pool(cfg, 500, 11);
  EXPECT_EQ(pool.size(), 500u);
  EXPECT_EQ(pool.num_classes(), 10u);
  const auto hist = pool.class_histogram();
  for (auto h : hist) EXPECT_GT(h, 20u);
}

TEST(ProceduralPool, BalancedPoolIsExactlyBalanced) {
  ProceduralImageConfig cfg;
  cfg.side = 14;
  const Dataset pool = make_procedural_pool_balanced(cfg, 12, 13);
  EXPECT_EQ(pool.size(), 120u);
  for (auto h : pool.class_histogram()) EXPECT_EQ(h, 12u);
}

TEST(ProceduralPool, SampleShapeIsCHW) {
  ProceduralImageConfig cfg;
  const Dataset pool = make_procedural_pool(cfg, 3, 1);
  EXPECT_EQ(pool.sample_shape(), tensor::Shape({1, 28, 28}));
}

}  // namespace
}  // namespace fedvr::data
