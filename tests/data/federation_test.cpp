#include "data/federation.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;

FederatedDataset small_fed() {
  SyntheticConfig cfg;
  cfg.num_devices = 5;
  cfg.dim = 4;
  cfg.num_classes = 3;
  cfg.min_samples = 8;
  cfg.max_samples = 40;
  cfg.seed = 7;
  return make_synthetic(cfg);
}

TEST(InMemoryFederation, MatchesBorrowedFederatedDataset) {
  const FederatedDataset fed = small_fed();
  const InMemoryFederation f(fed);
  ASSERT_EQ(f.num_devices(), fed.num_devices());
  EXPECT_EQ(f.total_train_size(), fed.total_train_size());
  EXPECT_FALSE(f.materializes_on_demand());
  Dataset scratch;
  for (std::size_t n = 0; n < fed.num_devices(); ++n) {
    EXPECT_EQ(f.device_train_size(n), fed.train[n].size());
    // weight() must reproduce FederatedDataset::weight bit-for-bit (same
    // two integers, same division) so traces stay hash-identical.
    EXPECT_EQ(f.weight(n), fed.weight(n));
    const Dataset& shard = f.train(n, scratch);
    // Borrowing federation returns the stored shard, not a copy.
    EXPECT_EQ(&shard, &fed.train[n]);
  }
  const Dataset pooled = fed.pooled_test();
  EXPECT_EQ(f.pooled_test().size(), pooled.size());
}

TEST(InMemoryFederation, WeightsSumToOne) {
  const FederatedDataset fed = small_fed();
  const InMemoryFederation f(fed);
  double sum = 0.0;
  for (std::size_t n = 0; n < f.num_devices(); ++n) sum += f.weight(n);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

VirtualFederation counting_virtual(std::size_t num_devices) {
  auto size_fn = [](std::size_t device) { return 3 + device % 4; };
  auto gen = [](std::size_t device, std::size_t num_samples, Dataset& out) {
    out = Dataset(tensor::Shape({2}), num_samples, 2);
    for (std::size_t i = 0; i < num_samples; ++i) {
      auto x = out.mutable_sample(i);
      x[0] = static_cast<double>(device);
      x[1] = static_cast<double>(i);
      out.set_label(i, static_cast<int>((device + i) % 2));
    }
  };
  Dataset pooled(tensor::Shape({2}), 4, 2);
  return VirtualFederation(num_devices, size_fn, gen, std::move(pooled));
}

TEST(VirtualFederation, CachesTotalAndReportsSizes) {
  const VirtualFederation f = counting_virtual(10);
  EXPECT_EQ(f.num_devices(), 10u);
  EXPECT_TRUE(f.materializes_on_demand());
  std::size_t total = 0;
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_EQ(f.device_train_size(n), 3 + n % 4);
    total += 3 + n % 4;
  }
  EXPECT_EQ(f.total_train_size(), total);
  // Caching the total must not have materialized any shards.
  EXPECT_EQ(f.materializations(), 0u);
}

TEST(VirtualFederation, TrainIsPureInDeviceIndex) {
  const VirtualFederation f = counting_virtual(10);
  Dataset s1, s2;
  const Dataset& a = f.train(7, s1);
  const Dataset& b = f.train(7, s2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sample(i)[0], b.sample(i)[0]);
    EXPECT_EQ(a.sample(i)[1], b.sample(i)[1]);
    EXPECT_EQ(a.label(i), b.label(i));
  }
  EXPECT_DOUBLE_EQ(a.sample(0)[0], 7.0);
  EXPECT_EQ(f.materializations(), 2u);
}

TEST(VirtualFederation, CountsOnlyTouchedDevices) {
  const VirtualFederation f = counting_virtual(1000000);
  Dataset scratch;
  (void)f.train(0, scratch);
  (void)f.train(999999, scratch);
  (void)f.train(42, scratch);
  EXPECT_EQ(f.materializations(), 3u);
}

TEST(VirtualFederation, MoveTransfersStateAndCounter) {
  VirtualFederation src = counting_virtual(10);
  Dataset scratch;
  (void)src.train(2, scratch);
  const std::size_t total = src.total_train_size();
  // Return-by-value into make_shared is the supported construction idiom.
  const auto moved = std::make_shared<VirtualFederation>(std::move(src));
  EXPECT_EQ(moved->num_devices(), 10u);
  EXPECT_EQ(moved->total_train_size(), total);
  EXPECT_EQ(moved->materializations(), 1u);
  const Dataset& shard = moved->train(4, scratch);
  EXPECT_DOUBLE_EQ(shard.sample(0)[0], 4.0);
  EXPECT_EQ(moved->materializations(), 2u);
}

TEST(MakeSyntheticVirtual, IsDeterministicAndWellFormed) {
  SyntheticConfig cfg;
  cfg.num_devices = 50;
  cfg.dim = 6;
  cfg.num_classes = 4;
  cfg.min_samples = 5;
  cfg.max_samples = 60;
  cfg.seed = 11;
  const VirtualFederation a = make_synthetic_virtual(cfg, 32);
  const VirtualFederation b = make_synthetic_virtual(cfg, 32);
  ASSERT_EQ(a.num_devices(), 50u);
  EXPECT_EQ(a.total_train_size(), b.total_train_size());
  EXPECT_EQ(a.pooled_test().size(), 32u);
  for (std::size_t n = 0; n < 50; ++n) {
    const std::size_t dn = a.device_train_size(n);
    EXPECT_GT(dn, 0u);
    EXPECT_GE(dn, cfg.min_samples);
    EXPECT_LE(dn, cfg.max_samples);
    EXPECT_EQ(dn, b.device_train_size(n));
  }
  // Same (seed, device) ⇒ bit-identical shard across federation instances.
  Dataset sa, sb;
  const Dataset& da = a.train(17, sa);
  const Dataset& db = b.train(17, sb);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    for (std::size_t j = 0; j < da.feature_dim(); ++j) {
      EXPECT_EQ(da.sample(i)[j], db.sample(i)[j]);
    }
    EXPECT_EQ(da.label(i), db.label(i));
  }
}

TEST(MakeSyntheticVirtual, PooledTestUsesReservedDeviceIndex) {
  SyntheticConfig cfg;
  cfg.num_devices = 8;
  cfg.dim = 5;
  cfg.num_classes = 3;
  cfg.seed = 13;
  const VirtualFederation f = make_synthetic_virtual(cfg, 64);
  const Dataset& pooled = f.pooled_test();
  ASSERT_EQ(pooled.size(), 64u);
  // The pooled test set comes from device index num_devices — the reserved
  // slot no training shard can collide with.
  const Dataset ref = make_synthetic_device(cfg, cfg.num_devices, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < pooled.feature_dim(); ++j) {
      EXPECT_EQ(pooled.sample(i)[j], ref.sample(i)[j]);
    }
    EXPECT_EQ(pooled.label(i), ref.label(i));
  }
}

}  // namespace
}  // namespace fedvr::data
