#include "data/idx_loader.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "testing/temp_dir.h"
#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;

void write_be32(std::ofstream& out, std::uint32_t v) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>(v >> 24),
      static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

class IdxLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::make_temp_dir("fedvr_idx_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Writes a valid 2-image 3x2 IDX pair with ramp pixel data.
  void write_valid_pair(const std::string& img, const std::string& lbl) {
    {
      std::ofstream out(path(img), std::ios::binary);
      write_be32(out, 0x803);
      write_be32(out, 2);   // images
      write_be32(out, 3);   // rows
      write_be32(out, 2);   // cols
      for (int i = 0; i < 12; ++i) out.put(static_cast<char>(i * 20));
    }
    {
      std::ofstream out(path(lbl), std::ios::binary);
      write_be32(out, 0x801);
      write_be32(out, 2);
      out.put(static_cast<char>(7));
      out.put(static_cast<char>(0));
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IdxLoaderTest, LoadsValidPair) {
  write_valid_pair("img", "lbl");
  const Dataset d = load_idx(path("img"), path("lbl"));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.sample_shape(), tensor::Shape({1, 3, 2}));
  EXPECT_EQ(d.label(0), 7);
  EXPECT_EQ(d.label(1), 0);
  EXPECT_DOUBLE_EQ(d.sample(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.sample(0)[1], 20.0 / 255.0);
  EXPECT_DOUBLE_EQ(d.sample(1)[0], 120.0 / 255.0);
}

TEST_F(IdxLoaderTest, AvailabilityCheck) {
  write_valid_pair("img", "lbl");
  EXPECT_TRUE(idx_pair_available(path("img"), path("lbl")));
  EXPECT_FALSE(idx_pair_available(path("missing"), path("lbl")));
  EXPECT_FALSE(idx_pair_available(path("lbl"), path("img")));  // swapped
}

TEST_F(IdxLoaderTest, MissingFileThrows) {
  EXPECT_THROW((void)load_idx(path("nope"), path("nope2")), Error);
}

TEST_F(IdxLoaderTest, WrongMagicThrows) {
  write_valid_pair("img", "lbl");
  EXPECT_THROW((void)load_idx(path("lbl"), path("img")), Error);
}

TEST_F(IdxLoaderTest, CountMismatchThrows) {
  write_valid_pair("img", "lbl");
  {
    std::ofstream out(path("lbl3"), std::ios::binary);
    write_be32(out, 0x801);
    write_be32(out, 3);  // three labels for two images
    out.put(static_cast<char>(1));
    out.put(static_cast<char>(2));
    out.put(static_cast<char>(3));
  }
  EXPECT_THROW((void)load_idx(path("img"), path("lbl3")), Error);
}

TEST_F(IdxLoaderTest, TruncatedImageDataThrows) {
  {
    std::ofstream out(path("img_trunc"), std::ios::binary);
    write_be32(out, 0x803);
    write_be32(out, 2);
    write_be32(out, 3);
    write_be32(out, 2);
    for (int i = 0; i < 8; ++i) out.put(static_cast<char>(i));  // 12 needed
  }
  {
    std::ofstream out(path("lbl2"), std::ios::binary);
    write_be32(out, 0x801);
    write_be32(out, 2);
    out.put(static_cast<char>(0));
    out.put(static_cast<char>(1));
  }
  EXPECT_THROW((void)load_idx(path("img_trunc"), path("lbl2")), Error);
}

}  // namespace
}  // namespace fedvr::data
