#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;

TEST(PowerLawSizes, RespectsRangeAndCount) {
  const auto sizes = power_law_sizes(100, 37, 3277, 1.5, 42);
  EXPECT_EQ(sizes.size(), 100u);
  for (auto s : sizes) {
    EXPECT_GE(s, 37u);
    EXPECT_LE(s, 3277u);
  }
  EXPECT_EQ(*std::min_element(sizes.begin(), sizes.end()), 37u);
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 3277u);
}

TEST(PowerLawSizes, IsHeavyTailed) {
  // Median far below mean is the power-law signature.
  auto sizes = power_law_sizes(200, 37, 3277, 1.5, 7);
  std::sort(sizes.begin(), sizes.end());
  const double median = static_cast<double>(sizes[sizes.size() / 2]);
  double mean = 0;
  for (auto s : sizes) mean += static_cast<double>(s);
  mean /= static_cast<double>(sizes.size());
  EXPECT_LT(median, mean);
}

TEST(PowerLawSizes, DeterministicInSeed) {
  EXPECT_EQ(power_law_sizes(50, 10, 100, 1.0, 3),
            power_law_sizes(50, 10, 100, 1.0, 3));
  EXPECT_NE(power_law_sizes(50, 10, 100, 1.0, 3),
            power_law_sizes(50, 10, 100, 1.0, 4));
}

TEST(PowerLawSizes, RejectsBadArgs) {
  EXPECT_THROW((void)power_law_sizes(0, 10, 100, 1.0, 1), Error);
  EXPECT_THROW((void)power_law_sizes(5, 1, 100, 1.0, 1), Error);
  EXPECT_THROW((void)power_law_sizes(5, 100, 10, 1.0, 1), Error);
}

TEST(SyntheticDevice, ShapesAndLabelsAreValid) {
  SyntheticConfig cfg;
  cfg.dim = 20;
  cfg.num_classes = 5;
  const Dataset d = make_synthetic_device(cfg, 3, 50);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_EQ(d.feature_dim(), 20u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.label(i), 0);
    EXPECT_LT(d.label(i), 5);
  }
}

TEST(SyntheticDevice, LabelsAreLearnableFromFeatures) {
  // The generating model is linear; the argmax label must be recoverable
  // from the features by construction — sanity-check label diversity.
  SyntheticConfig cfg;
  const Dataset d = make_synthetic_device(cfg, 0, 500);
  std::set<int> labels;
  for (std::size_t i = 0; i < d.size(); ++i) labels.insert(d.label(i));
  EXPECT_GE(labels.size(), 2u);
}

TEST(SyntheticDevice, DevicesDiffer) {
  SyntheticConfig cfg;
  const Dataset a = make_synthetic_device(cfg, 0, 10);
  const Dataset b = make_synthetic_device(cfg, 1, 10);
  // Feature distributions differ across devices (different v_k).
  double diff = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    diff += std::abs(a.sample(i)[0] - b.sample(i)[0]);
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(SyntheticDevice, DeterministicInSeedAndDevice) {
  SyntheticConfig cfg;
  const Dataset a = make_synthetic_device(cfg, 2, 10);
  const Dataset b = make_synthetic_device(cfg, 2, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_DOUBLE_EQ(a.sample(i)[0], b.sample(i)[0]);
  }
}

TEST(MakeSynthetic, ProducesPerDeviceTrainTestSplits) {
  SyntheticConfig cfg;
  cfg.num_devices = 10;
  cfg.min_samples = 40;
  cfg.max_samples = 100;
  const FederatedDataset fed = make_synthetic(cfg);
  EXPECT_EQ(fed.num_devices(), 10u);
  ASSERT_EQ(fed.test.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k) {
    const std::size_t total = fed.train[k].size() + fed.test[k].size();
    EXPECT_GE(total, 40u);
    EXPECT_LE(total, 100u);
    // 75/25 split within rounding.
    EXPECT_NEAR(static_cast<double>(fed.train[k].size()) /
                    static_cast<double>(total),
                0.75, 0.05);
  }
}

TEST(MakeSyntheticIid, DevicesShareTheDistribution) {
  SyntheticConfig cfg;
  cfg.num_devices = 6;
  cfg.min_samples = 40;
  cfg.max_samples = 120;
  const FederatedDataset fed = make_synthetic_iid(cfg);
  EXPECT_EQ(fed.num_devices(), 6u);
  // Per-coordinate feature means agree across devices (same v_k), unlike
  // the heterogeneous generator.
  auto mean_feature0 = [](const Dataset& d) {
    double sum = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) sum += d.sample(i)[0];
    return sum / static_cast<double>(d.size());
  };
  const double m0 = mean_feature0(fed.train[0]);
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_NEAR(mean_feature0(fed.train[k]), m0, 0.5);
  }
}

TEST(MakeSyntheticIid, SizesStillFollowPowerLaw) {
  SyntheticConfig cfg;
  cfg.num_devices = 8;
  cfg.min_samples = 30;
  cfg.max_samples = 200;
  const FederatedDataset fed = make_synthetic_iid(cfg);
  std::size_t min_total = 1e9, max_total = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    const std::size_t total = fed.train[k].size() + fed.test[k].size();
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
  }
  EXPECT_GE(min_total, 30u);
  EXPECT_LE(max_total, 200u);
  EXPECT_GT(max_total, 2 * min_total);  // genuinely spread out
}

TEST(MakeSyntheticIid, SamplesArePartitionedNotShared) {
  SyntheticConfig cfg;
  cfg.num_devices = 3;
  cfg.min_samples = 20;
  cfg.max_samples = 40;
  const FederatedDataset fed = make_synthetic_iid(cfg);
  // Feature vectors across devices must all be distinct draws.
  const auto a = fed.train[0].sample(0);
  const auto b = fed.train[1].sample(0);
  double diff = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) diff += std::abs(a[j] - b[j]);
  EXPECT_GT(diff, 1e-9);
}

TEST(MakeSynthetic, AlphaBetaZeroStillHeterogeneous) {
  SyntheticConfig cfg;
  cfg.num_devices = 4;
  cfg.alpha = 0.0;
  cfg.beta = 0.0;
  cfg.min_samples = 40;
  cfg.max_samples = 60;
  const FederatedDataset fed = make_synthetic(cfg);
  // Local label distributions still differ (per-device true models).
  const auto h0 = fed.train[0].class_histogram();
  const auto h1 = fed.train[1].class_histogram();
  EXPECT_NE(h0, h1);
}

}  // namespace
}  // namespace fedvr::data
