#include "data/dataset.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace fedvr::data {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

Dataset tiny_dataset() {
  Dataset d(tensor::Shape({2}), 4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    auto x = d.mutable_sample(i);
    x[0] = static_cast<double>(i);
    x[1] = static_cast<double>(i) * 10;
    d.set_label(i, static_cast<int>(i % 3));
  }
  return d;
}

TEST(Dataset, StoresAndRetrievesSamples) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.feature_dim(), 2u);
  EXPECT_EQ(d.num_classes(), 3u);
  EXPECT_DOUBLE_EQ(d.sample(2)[1], 20.0);
  EXPECT_EQ(d.label(2), 2);
}

TEST(Dataset, OutOfRangeAccessThrows) {
  const Dataset d = tiny_dataset();
  EXPECT_THROW((void)d.sample(4), Error);
  EXPECT_THROW((void)d.label(4), Error);
}

TEST(Dataset, SetLabelValidatesRange) {
  Dataset d = tiny_dataset();
  EXPECT_THROW(d.set_label(0, 3), Error);
  EXPECT_THROW(d.set_label(0, -1), Error);
  EXPECT_NO_THROW(d.set_label(0, 2));
}

TEST(Dataset, SubsetCopiesSelectedSamples) {
  const Dataset d = tiny_dataset();
  const std::vector<std::size_t> idx = {3, 1};
  const Dataset s = d.subset(idx);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.sample(0)[0], 3.0);
  EXPECT_EQ(s.label(1), 1);
}

TEST(Dataset, SplitPartitionsAllSamples) {
  Dataset d(tensor::Shape({1}), 100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    d.mutable_sample(i)[0] = static_cast<double>(i);
  }
  Rng rng(5);
  const auto [train, test] = d.split(rng, 0.75);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  // Union of feature values must be exactly 0..99.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    seen[static_cast<std::size_t>(train.sample(i)[0])]++;
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    seen[static_cast<std::size_t>(test.sample(i)[0])]++;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Dataset, SplitKeepsAtLeastOneTrainSampleOnTinyData) {
  Dataset d(tensor::Shape({1}), 2, 2);
  Rng rng(5);
  const auto [train, test] = d.split(rng, 0.75);
  EXPECT_GE(train.size(), 1u);
  EXPECT_EQ(train.size() + test.size(), 2u);
}

TEST(Dataset, SplitRejectsDegenerateFractions) {
  Dataset d = tiny_dataset();
  Rng rng(1);
  EXPECT_THROW((void)d.split(rng, 0.0), Error);
  EXPECT_THROW((void)d.split(rng, 1.0), Error);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a = tiny_dataset();
  const Dataset b = tiny_dataset();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_DOUBLE_EQ(a.sample(7)[0], 3.0);
}

TEST(Dataset, AppendShapeMismatchThrows) {
  Dataset a = tiny_dataset();
  const Dataset b(tensor::Shape({3}), 2, 3);
  EXPECT_THROW(a.append(b), Error);
}

TEST(Dataset, ClassHistogramCounts) {
  const Dataset d = tiny_dataset();  // labels 0,1,2,0
  const auto hist = d.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(FederatedDataset, WeightsAreProportionalAndSumToOne) {
  FederatedDataset fed;
  fed.train.push_back(Dataset(tensor::Shape({1}), 30, 2));
  fed.train.push_back(Dataset(tensor::Shape({1}), 10, 2));
  fed.test.push_back(Dataset(tensor::Shape({1}), 5, 2));
  fed.test.push_back(Dataset(tensor::Shape({1}), 5, 2));
  EXPECT_EQ(fed.total_train_size(), 40u);
  EXPECT_DOUBLE_EQ(fed.weight(0), 0.75);
  EXPECT_DOUBLE_EQ(fed.weight(1), 0.25);
  EXPECT_DOUBLE_EQ(fed.weight(0) + fed.weight(1), 1.0);
}

TEST(FederatedDataset, PooledTestConcatenatesAllDevices) {
  FederatedDataset fed;
  fed.train.push_back(Dataset(tensor::Shape({1}), 1, 2));
  fed.test.push_back(Dataset(tensor::Shape({1}), 3, 2));
  fed.test.push_back(Dataset(tensor::Shape({1}), 4, 2));
  EXPECT_EQ(fed.pooled_test().size(), 7u);
}

}  // namespace
}  // namespace fedvr::data
