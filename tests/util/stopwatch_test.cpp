#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace fedvr::util {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI machines
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3,
              sw.seconds() * 1e3 * 0.5);
}

TEST(Stopwatch, IsMonotonic) {
  Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(b, a);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

}  // namespace
}  // namespace fedvr::util
