#include "util/log.h"

#include <gtest/gtest.h>

namespace fedvr::util {
namespace {

// Restores the global level after each test so suites don't interfere.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LogTest, FilteredMessagesDoNotEvaluateOperands) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  FEDVR_LOG_DEBUG << count();
  FEDVR_LOG_INFO << count();
  FEDVR_LOG_WARN << count();
  EXPECT_EQ(evaluations, 0);
  FEDVR_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, MacroIsDanglingElseSafe) {
  set_log_level(LogLevel::kError);
  bool else_taken = false;
  if (false)
    FEDVR_LOG_INFO << "never";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);
}

TEST_F(LogTest, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("2"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
}

TEST_F(LogTest, ParseLogLevelRejectsGarbage) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
  EXPECT_EQ(parse_log_level("err or"), std::nullopt);
}

TEST_F(LogTest, EmittingDoesNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(FEDVR_LOG_DEBUG << "debug " << 1);
  EXPECT_NO_THROW(FEDVR_LOG_INFO << "info " << 2.5);
  EXPECT_NO_THROW(FEDVR_LOG_WARN << "warn " << 'c');
  EXPECT_NO_THROW(FEDVR_LOG_ERROR << "error");
}

}  // namespace
}  // namespace fedvr::util
