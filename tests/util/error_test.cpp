#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace fedvr::util {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(FEDVR_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithExpression) {
  try {
    FEDVR_CHECK(2 > 3);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageVariantCarriesContext) {
  const int n = -4;
  try {
    FEDVR_CHECK_MSG(n >= 0, "device count " << n << " is negative");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("device count -4 is negative"), std::string::npos);
  }
}

TEST(Check, MessageNotEvaluatedWhenCheckPasses) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "ctx";
  };
  FEDVR_CHECK_MSG(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, WorksInsideIfWithoutBraces) {
  // Guards against the classic dangling-else macro bug.
  bool executed_else = false;
  if (false)
    FEDVR_CHECK(true);
  else
    executed_else = true;
  EXPECT_TRUE(executed_else);
}

TEST(ErrorType, IsARuntimeError) {
  const Error e("msg");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "msg");
}

}  // namespace
}  // namespace fedvr::util
