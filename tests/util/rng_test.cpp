#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/error.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace fedvr::util {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  (void)a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 1.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 1.5);
  }
}

TEST(Rng, UniformMeanIsCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.below(0), Error);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.below(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> xs(100);
  std::iota(xs.begin(), xs.end(), 0);
  auto copy = xs;
  rng.shuffle(std::span<int>(copy));
  EXPECT_NE(copy, xs);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndSorted) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(50, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_LT(s[i], s[i + 1]);
  }
  for (auto v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(5, 5);
  ASSERT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng(37);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(41);
  const std::vector<double> w = {0.0, 3.0, 1.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(43);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(zero), Error);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW((void)rng.categorical(negative), Error);
  EXPECT_THROW((void)rng.categorical({}), Error);
}

TEST(Rng, CategoricalNeverReturnsZeroWeightIndex) {
  // Regression: the fallthrough used to clamp to weights.size() - 1 and the
  // scan could select a zero-weight index when fp rounding walked the
  // residual negative. With trailing (and interior) zero weights, a
  // zero-probability index must never come back — under any draw.
  Rng rng(47);
  const std::vector<double> w = {0.1, 0.0, 1e-17, 0.0, 0.0};
  for (int i = 0; i < 200000; ++i) {
    const std::size_t idx = rng.categorical(w);
    ASSERT_TRUE(idx == 0 || idx == 2) << "drew zero-weight index " << idx;
  }
  // Degenerate single-support distributions, mass at either end.
  const std::vector<double> only_last = {0.0, 0.0, 2.0};
  const std::vector<double> only_first = {2.0, 0.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.categorical(only_last), 2u);
    EXPECT_EQ(rng.categorical(only_first), 0u);
  }
}

TEST(Rng, SampleSubsetSortedIsDistinctSortedInRange) {
  Rng rng(53);
  std::vector<std::size_t> out;
  rng.sample_subset_sorted(1000, 20, out);
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_LT(out[i], out[i + 1]);
  }
  for (auto v : out) EXPECT_LT(v, 1000u);
  // The out-param is cleared, not appended to.
  rng.sample_subset_sorted(1000, 5, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(Rng, SampleSubsetSortedFullRangeAndErrors) {
  Rng rng(59);
  std::vector<std::size_t> out;
  rng.sample_subset_sorted(6, 6, out);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
  rng.sample_subset_sorted(6, 0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_THROW(rng.sample_subset_sorted(3, 4, out), Error);
}

TEST(Rng, SampleSubsetSortedIsUnbiased) {
  // Floyd's algorithm gives every index the same inclusion probability
  // k/n; a per-index chi-square-ish tolerance catches off-by-one bugs in
  // the [n-k, n) window handling.
  Rng rng(61);
  constexpr std::size_t n = 20, k = 5;
  constexpr int trials = 40000;
  std::vector<int> counts(n, 0);
  std::vector<std::size_t> out;
  for (int t = 0; t < trials; ++t) {
    rng.sample_subset_sorted(n, k, out);
    for (auto v : out) counts[v]++;
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, 0.05 * expected) << "index " << i;
  }
}

TEST(Rng, SampleSubsetSortedCostIsIndependentOfPopulation) {
  // O(k) contract: sampling 10 of a billion must not walk the population.
  // (An O(n) implementation would time out long before any assertion.)
  Rng rng(67);
  std::vector<std::size_t> out;
  rng.sample_subset_sorted(1'000'000'000, 10, out);
  ASSERT_EQ(out.size(), 10u);
  for (auto v : out) EXPECT_LT(v, 1'000'000'000u);
}

TEST(Fork, SameCoordinatesSameStream) {
  Rng a = fork(99, 1, 2, 3);
  Rng b = fork(99, 1, 2, 3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Fork, DifferentCoordinatesIndependentStreams) {
  Rng a = fork(99, 1, 2, 3);
  Rng b = fork(99, 1, 2, 4);
  Rng c = fork(99, 2, 2, 3);
  Rng d = fork(100, 1, 2, 3);
  int collisions = 0;
  for (int i = 0; i < 50; ++i) {
    const auto va = a();
    collisions += (va == b()) + (va == c()) + (va == d());
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Fork, CoordinateOrderMatters) {
  Rng a = fork(7, 1, 2);
  Rng b = fork(7, 2, 1);
  EXPECT_NE(a(), b());
}

TEST(Splitmix, KnownGoodValues) {
  // Reference values for seed 0 (widely published SplitMix64 test vector).
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(s), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace fedvr::util
