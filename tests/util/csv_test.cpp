#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "testing/temp_dir.h"
#include "util/error.h"

namespace fedvr::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::make_temp_dir("fedvr_csv_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path("a.csv"), {"round", "loss"});
    w.row({"1", "0.5"});
    w.row({"2", "0.25"});
  }
  EXPECT_EQ(slurp(path("a.csv")), "round,loss\n1,0.5\n2,0.25\n");
}

TEST_F(CsvTest, RowBuilderFormatsNumbers) {
  {
    CsvWriter w(path("b.csv"), {"name", "x", "n"});
    w.builder().add("svrg").add(0.125).add(std::size_t{42}).commit();
  }
  EXPECT_EQ(slurp(path("b.csv")), "name,x,n\nsvrg,0.125,42\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path("c.csv"), {"v"});
    w.row({"a,b"});
    w.row({"say \"hi\""});
    w.row({"line\nbreak"});
  }
  EXPECT_EQ(slurp(path("c.csv")),
            "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
}

TEST_F(CsvTest, WrongCellCountThrows) {
  CsvWriter w(path("d.csv"), {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), Error);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/f.csv", {"a"}), Error);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(path("e.csv"), {}), Error);
}

TEST_F(CsvTest, EnsureResultsDirCreatesNestedDirs) {
  const auto nested = (dir_ / "x" / "y").string();
  EXPECT_EQ(ensure_results_dir(nested), nested);
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  // Idempotent.
  EXPECT_EQ(ensure_results_dir(nested), nested);
}

}  // namespace
}  // namespace fedvr::util
