#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"

namespace fedvr::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Flags, ParsesEqualsSyntax) {
  Flags flags("t", "test");
  int rounds = 10;
  double lr = 0.1;
  flags.add("rounds", &rounds, "rounds");
  flags.add("lr", &lr, "learning rate");
  auto argv = argv_of({"--rounds=25", "--lr=0.05"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(rounds, 25);
  EXPECT_DOUBLE_EQ(lr, 0.05);
}

TEST(Flags, ParsesSpaceSyntax) {
  Flags flags("t", "test");
  std::string name = "default";
  flags.add("name", &name, "name");
  auto argv = argv_of({"--name", "synthetic"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(name, "synthetic");
}

TEST(Flags, BoolFlagWithoutValueIsTrue) {
  Flags flags("t", "test");
  bool verbose = false;
  flags.add("verbose", &verbose, "verbosity");
  auto argv = argv_of({"--verbose"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(verbose);
}

TEST(Flags, BoolFlagExplicitFalse) {
  Flags flags("t", "test");
  bool verbose = true;
  flags.add("verbose", &verbose, "verbosity");
  auto argv = argv_of({"--verbose=false"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(verbose);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags("t", "test");
  int x = 0;
  flags.add("x", &x, "x");
  auto argv = argv_of({"--y=3"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               Error);
}

TEST(Flags, MalformedNumberThrows) {
  Flags flags("t", "test");
  int x = 0;
  flags.add("x", &x, "x");
  auto argv = argv_of({"--x=abc"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               Error);
}

TEST(Flags, TrailingNumberGarbageThrows) {
  Flags flags("t", "test");
  double x = 0;
  flags.add("x", &x, "x");
  auto argv = argv_of({"--x=1.5zzz"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               Error);
}

TEST(Flags, MissingValueThrows) {
  Flags flags("t", "test");
  int x = 0;
  flags.add("x", &x, "x");
  auto argv = argv_of({"--x"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               Error);
}

TEST(Flags, PositionalArgumentThrows) {
  Flags flags("t", "test");
  auto argv = argv_of({"stray"});
  EXPECT_THROW(flags.parse(static_cast<int>(argv.size()), argv.data()),
               Error);
}

TEST(Flags, DuplicateRegistrationThrows) {
  Flags flags("t", "test");
  int a = 0, b = 0;
  flags.add("x", &a, "first");
  EXPECT_THROW(flags.add("x", &b, "second"), Error);
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  Flags flags("prog", "does things");
  int rounds = 100;
  flags.add("rounds", &rounds, "global rounds");
  const std::string u = flags.usage();
  EXPECT_NE(u.find("--rounds"), std::string::npos);
  EXPECT_NE(u.find("100"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

TEST(Flags, SizeTypeAndInt64Flags) {
  Flags flags("t", "test");
  std::size_t devices = 10;
  std::int64_t seed = -1;
  flags.add("devices", &devices, "device count");
  flags.add("seed", &seed, "seed");
  auto argv = argv_of({"--devices=100", "--seed", "-42"});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(devices, 100u);
  EXPECT_EQ(seed, -42);
}

TEST(Flags, NoArgsLeavesDefaults) {
  Flags flags("t", "test");
  int x = 5;
  flags.add("x", &x, "x");
  auto argv = argv_of({});
  flags.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(x, 5);
}

}  // namespace
}  // namespace fedvr::util
