#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.h"

namespace fedvr::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  pool.parallel_for(3, 7, [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 3 && i < 7) ? 1 : 0);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, InvertedRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](std::size_t) {}), Error);
}

TEST(ParallelFor, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 50) {
                                     throw std::runtime_error("bad index");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, hits.size(), [&hits](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, LargeGrainFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i]++; },
                    /*grain=*/100);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelRanges, CoversRangeInDisjointChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  std::atomic<int> calls{0};
  pool.parallel_ranges(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        calls++;
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
      },
      /*grain=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // grain=64 over 777 indices caps the chunk count at ceil(777/64)=13, and
  // a 4-thread pool caps it at 4.
  EXPECT_LE(calls.load(), 4);
  EXPECT_GE(calls.load(), 1);
}

TEST(ParallelRanges, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_ranges(9, 9, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls, 0);
}

// A parallel_for issued from inside a worker must run inline rather than
// submit-and-wait (which could deadlock with every worker blocked). This is
// what lets the gemm kernels call parallel_for unconditionally even when
// the trainer already fanned device work across the pool.
TEST(ParallelFor, NestedInsideWorkerRunsInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(4 * 100);
  pool.parallel_for(0, 4, [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::in_worker());
    pool.parallel_for(0, 100, [&, outer](std::size_t inner) {
      hits[outer * 100 + inner]++;
    });
  });
  EXPECT_FALSE(ThreadPool::in_worker());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResetGlobalChangesSizeAndRestores) {
  ThreadPool::reset_global(3);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  auto f = ThreadPool::global().submit([] { return 5; });
  EXPECT_EQ(f.get(), 5);
  ThreadPool::reset_global(0);
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  auto f = ThreadPool::global().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter++; });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace fedvr::util
